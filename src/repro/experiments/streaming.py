"""Streaming — the paper grids re-run under the streaming transports.

Not a paper figure: an extension sweep. The paper's sync modes move
whole timestep batches (barrier) or poll for them (polling); this
experiment re-runs the fig5/fig7/fig8 and stride grids under the three
per-frame streaming modes of :mod:`repro.workflow.streaming`:

- **windowed** — ADIOS2-SST-style bounded in-flight window with
  credit-based backpressure (W = 4 here, so the producer pipelines),
- **pubsub** — per-frame publish/subscribe over the KVS watch
  machinery (consumers park on watches instead of polling),
- **nbuffer** — classic double buffering, the W = 2 windowed special
  case.

Every cell runs with the invariant checker armed and **fatal** (the
default), so the flow-control family — credit conservation, bounded
window, backpressure liveness — gates each grid: a leaked credit or a
window overrun raises instead of producing a number. Each grid is swept
under both the ``exact`` and ``hybrid`` fidelity tiers, extending the
paper's idle-time decomposition to DYAD-vs-streaming at both tiers.

The run *gates*: any recorded invariant violation or a credit-ledger
imbalance lands in ``StreamingReport.failures`` and fails the CLI
invocation, mirroring the chaos soak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.common import (
    FigureResult,
    default_frames,
    default_runs,
    measure,
)
from repro.md.models import JAC, MODELS
from repro.workflow.spec import Placement, SyncMode, System, WorkflowSpec

__all__ = ["MODES", "FIDELITIES", "StreamingReport", "run", "main"]

#: The three streaming transports, swept for every grid cell.
MODES: Tuple[SyncMode, ...] = (
    SyncMode.WINDOWED, SyncMode.PUBSUB, SyncMode.NBUFFER,
)

#: Simulation tiers each grid runs under.
FIDELITIES: Tuple[str, ...] = ("exact", "hybrid")

#: In-flight window for WINDOWED cells (> 2 so it is distinguishable
#: from NBUFFER); PUBSUB/NBUFFER use the spec default (W = 2).
WINDOW = 4


def _label(system: System, mode: SyncMode) -> str:
    """Column label: system and transport, e.g. ``dyad/windowed``."""
    return f"{system.value}/{mode.value}"


def _window(mode: SyncMode) -> int:
    return WINDOW if mode is SyncMode.WINDOWED else 2


def _grids(quick: bool):
    """The grid definitions: (figure_id, title, x_name, cell list).

    Each cell is ``(x, system, spec_kwargs)``; the sweep crosses every
    cell with every streaming mode. Sizes are scaled down from the
    paper figures — three modes x two fidelity tiers multiply every
    cell six-fold, and the point is the transport comparison, not the
    paper's full scaling curve (fig5/fig7/fig8 cover that).
    """
    fig5_pairs = (1, 2) if quick else (1, 2, 4)
    # one split grid subsumes fig6's small two-node ensembles and
    # fig7's multi-node scaling foot
    fig7_pairs = (2, 8) if quick else (2, 8, 32)
    fig8_models = (MODELS[0], MODELS[-1]) if quick else MODELS
    fig8_pairs = 4 if quick else 16
    strides = (1, 10) if quick else (1, 5, 10, 50)
    stride_pairs = 4 if quick else 16

    def cells(xs, systems, kwargs_of):
        return [(x, system, kwargs_of(x)) for x in xs for system in systems]

    return [
        ("Streaming-5", "single node, JAC (XFS vs DYAD)", "pairs",
         cells(fig5_pairs, (System.XFS, System.DYAD),
               lambda pairs: dict(model=JAC, pairs=pairs,
                                  placement=Placement.SINGLE_NODE))),
        ("Streaming-6/7", "two nodes split, JAC (Lustre vs DYAD)", "pairs",
         cells(fig7_pairs, (System.DYAD, System.LUSTRE),
               lambda pairs: dict(model=JAC, pairs=pairs,
                                  placement=Placement.SPLIT))),
        ("Streaming-8", f"model scaling, {fig8_pairs} pairs "
         "(Lustre vs DYAD)", "model",
         cells([m.name for m in fig8_models], (System.DYAD, System.LUSTRE),
               lambda name: dict(model=next(m for m in fig8_models
                                            if m.name == name),
                                 pairs=fig8_pairs,
                                 placement=Placement.SPLIT))),
        ("Streaming-11", f"JAC stride sweep, {stride_pairs} pairs "
         "(Lustre vs DYAD)", "stride",
         cells(strides, (System.DYAD, System.LUSTRE),
               lambda stride: dict(model=JAC, stride=stride,
                                   pairs=stride_pairs,
                                   placement=Placement.SPLIT))),
    ]


@dataclass
class StreamingReport:
    """The full sweep: one :class:`FigureResult` per grid and tier."""

    figures: List[FigureResult] = field(default_factory=list)
    #: per-mode flow-control totals across every cell (credits, blocks,
    #: wake-ups), keyed by mode value
    flow_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: gate trips: invariant violations or credit-ledger imbalances
    failures: List[str] = field(default_factory=list)
    runs: int = 0
    frames: int = 0

    def render(self) -> str:
        """Every figure's report, flow-control totals, and the gate line."""
        parts = [fig.render() for fig in self.figures]
        lines = ["=== streaming flow-control totals (all grids) ==="]
        for mode, stats in self.flow_stats.items():
            lines.append(
                f"{mode:8s} credits {stats['credits_issued']:.0f} issued / "
                f"{stats['credits_returned']:.0f} returned, "
                f"peak in-flight {stats['peak_in_flight']:.0f}, "
                f"{stats['producer_blocks']:.0f} producer block(s) "
                f"({stats['blocked_time']:.4f}s), "
                f"{stats['lost_wakeups']:.0f} lost / "
                f"{stats['spurious_wakeups']:.0f} spurious wake-up(s)"
            )
        parts.append("\n".join(lines))
        if self.failures:
            parts.append("FAILURES:\n" + "\n".join(self.failures))
        else:
            parts.append("gate: zero invariant violations, credit ledgers "
                         "balanced across every cell")
        return "\n\n".join(parts)


_FLOW_KEYS = ("credits_issued", "credits_returned", "peak_in_flight",
              "producer_blocks", "blocked_time", "lost_wakeups",
              "spurious_wakeups")


def run(runs: Optional[int] = None, frames: Optional[int] = None,
        quick: bool = False) -> StreamingReport:
    """Sweep every grid x mode x fidelity cell; gate on flow invariants."""
    runs = default_runs(1 if quick else runs)
    frames = default_frames(8 if quick else frames)
    report = StreamingReport(runs=runs, frames=frames)
    report.flow_stats = {
        mode.value: {k: 0.0 for k in _FLOW_KEYS} for mode in MODES
    }
    for figure_id, title, x_name, grid_cells in _grids(quick):
        systems = []
        for fidelity in FIDELITIES:
            cells = {}
            xs: List[object] = []
            for x, system, kwargs in grid_cells:
                if x not in xs:
                    xs.append(x)
                for mode in MODES:
                    spec = WorkflowSpec(system=system, frames=frames,
                                        sync_mode=mode,
                                        window=_window(mode), **kwargs)
                    cell, results = measure(spec, runs=runs,
                                            fidelity=fidelity)
                    label = _label(system, mode)
                    if label not in systems:
                        systems.append(label)
                    cells[(x, label)] = cell
                    _account(report, mode, figure_id, fidelity, x, label,
                             results)
            fig = FigureResult(
                figure_id=f"{figure_id} [{fidelity}]",
                title=f"{title} — streaming transports, {fidelity} tier",
                x_name=x_name,
                xs=xs,
                systems=list(systems),
                cells=cells,
                runs=runs,
                frames=frames,
            )
            fig.notes = [
                f"window: W={WINDOW} (windowed), W=2 (nbuffer), "
                f"per-frame watch events (pubsub); checker fatal",
            ]
            report.figures.append(fig)
    return report


def _account(report: StreamingReport, mode: SyncMode, figure_id: str,
             fidelity: str, x, label: str, results) -> None:
    """Fold one cell's runs into the flow totals; record gate trips."""
    totals = report.flow_stats[mode.value]
    where = f"{figure_id}/{fidelity} {label} @ {x}"
    for r in results:
        stats = r.system_stats
        for key in _FLOW_KEYS:
            value = stats.get(f"stream_{key}", 0.0)
            if key == "peak_in_flight":
                totals[key] = max(totals[key], value)
            else:
                totals[key] += value
        if r.invariant_violations:
            report.failures.append(
                f"{where}: {len(r.invariant_violations)} invariant "
                f"violation(s): {r.invariant_violations[0]}"
            )
        issued = stats.get("stream_credits_issued", 0.0)
        returned = stats.get("stream_credits_returned", 0.0)
        if issued != returned:
            report.failures.append(
                f"{where}: credit ledger imbalanced "
                f"({issued:.0f} issued != {returned:.0f} returned)"
            )
        expected = float(r.spec.pairs * r.spec.frames)
        if issued != expected:
            report.failures.append(
                f"{where}: {issued:.0f} credits issued for "
                f"{expected:.0f} frames"
            )


def main(quick: bool = False) -> StreamingReport:
    """Run, print, and gate the sweep (raises on violations)."""
    from repro.errors import CampaignError

    report = run(quick=quick)
    print(report.render())
    if report.failures:
        raise CampaignError(
            f"streaming sweep failed: {len(report.failures)} cell(s) "
            "tripped the flow-control gate"
        )
    return report


if __name__ == "__main__":
    main()
