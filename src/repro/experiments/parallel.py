"""Parallel, cached execution of workflow-repetition campaigns.

The paper's evaluation is a campaign of ~12 experiments × up to 10
repetitions per configuration. Every repetition is an independent,
deterministic function of ``(spec, seed, jitter_cv, system configs)``, so
the campaign is embarrassingly parallel: this module fans repetitions out
across worker *processes* (the DES kernel is pure Python, so threads would
serialize on the GIL) and memoizes each repetition in the on-disk result
cache of :mod:`repro.experiments.persist`.

Three knobs, in increasing precedence:

- ``REPRO_JOBS`` / ``REPRO_CACHE`` / ``REPRO_CACHE_DIR`` environment
  variables (process-wide defaults);
- :func:`campaign` — a context manager the bulk runner and the CLI use to
  scope ``--jobs`` / ``--no-cache`` around a whole campaign without
  threading arguments through every figure module;
- explicit ``jobs=`` / ``use_cache=`` arguments to
  :func:`repro.workflow.runner.run_repetitions` or :func:`run_campaign`.

Workers use the ``spawn`` start method: each worker is a fresh
interpreter, so the executor never depends on fork-shared state and
behaves identically on Linux/macOS/Windows. Determinism is load-bearing:
results are returned in task order and each worker computes exactly what
the serial path would, so ``jobs=N`` output is bit-identical to ``jobs=1``
(asserted by ``tests/experiments/test_parallel.py``).
"""

from __future__ import annotations

import hashlib
import json
import math
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import CampaignError, ReproError
from repro.faults.plan import FaultPlan
from repro.invariants import InvariantConfig
from repro.workflow.runner import WorkflowResult, run_workflow
from repro.workflow.spec import WorkflowSpec

__all__ = [
    "RunTask",
    "campaign",
    "default_jobs",
    "default_fault_plan",
    "default_fidelity",
    "run_campaign",
    "result_fingerprint",
]

#: Start method for worker processes. ``spawn`` is slower to start than
#: ``fork`` but safe regardless of importing-process state (threads, open
#: files) and uniform across platforms.
_START_METHOD = "spawn"

# Campaign-scoped defaults installed by :func:`campaign`. ``None`` means
# "fall through to the environment". ``trace_path`` / ``metrics_path``
# request a one-shot telemetry export (claimed by the first
# :func:`run_campaign` in the scope; ``telemetry_done`` marks the claim).
_SCOPED: Dict[str, Any] = {
    "jobs": None, "cache": None, "cache_dir": None, "fault_plan": None,
    "fidelity": None,
    "trace_path": None, "metrics_path": None, "telemetry_done": False,
}


@dataclass(frozen=True)
class RunTask:
    """One repetition: a pure function of its fields.

    ``system_configs`` holds the optional ``dyad_config`` /
    ``xfs_config`` / ``lustre_config`` keyword arguments of
    :func:`repro.workflow.runner.run_workflow`; ``fault_plan`` (when set)
    makes the repetition a *faulty* run — still a pure, seeded function
    of its fields, and cached under a distinct key. ``invariants``
    configures the run's invariant checker and participates in the cache
    key the same way (a non-fatal checked run and a fatal one never
    alias, even though clean results are bit-identical).
    """

    spec: WorkflowSpec
    seed: int
    jitter_cv: float = 0.0
    system_configs: Dict[str, Any] = field(default_factory=dict)
    fault_plan: Optional[FaultPlan] = None
    invariants: Optional[InvariantConfig] = None
    #: simulation tier ("exact" / "hybrid" / "fluid"); participates in
    #: the cache key — tiers never alias even when their timings agree
    fidelity: str = "exact"


def default_jobs(override: Optional[int] = None) -> int:
    """Resolve the worker count: explicit > campaign scope > env > 1.

    Whatever the source, the result is clamped to ``os.cpu_count()``:
    every worker is a CPU-bound pure-Python simulator, so oversubscribing
    cores only adds scheduling churn and spawn overhead (a 4-worker
    campaign on a 1-CPU box measured *slower* than serial). Set
    ``REPRO_JOBS_OVERSUBSCRIBE=1`` to skip the clamp — the worker-fault
    tests use it to get real worker processes regardless of box size.
    """
    if override is None:
        override = _SCOPED["jobs"]
    if override is None:
        override = os.environ.get("REPRO_JOBS", "1")
    jobs = int(override)
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    if os.environ.get("REPRO_JOBS_OVERSUBSCRIBE", "0") != "1":
        cpus = os.cpu_count() or 1
        if jobs > cpus:
            jobs = cpus
    return jobs


def _default_cache(override: Optional[bool] = None) -> bool:
    """Resolve cache usage: explicit > campaign scope > env > off."""
    if override is not None:
        return bool(override)
    if _SCOPED["cache"] is not None:
        return bool(_SCOPED["cache"])
    return os.environ.get("REPRO_CACHE", "0") == "1"


def default_fault_plan(
    override: Optional[FaultPlan] = None,
) -> Optional[FaultPlan]:
    """Resolve the fault plan: explicit > campaign scope > none.

    This is how ``--fault-plan FILE`` threads a deserialized chaos repro
    into every repetition of whatever experiment the CLI dispatches,
    without touching the figure modules' signatures.
    """
    if override is not None:
        return override
    return _SCOPED["fault_plan"]


def default_fidelity(override: Optional[str] = None) -> str:
    """Resolve the fidelity tier: explicit > campaign scope > env > exact.

    This is how ``--fidelity fluid`` threads the tier into every
    repetition of whatever experiment the CLI dispatches (same pattern as
    :func:`default_fault_plan`); ``REPRO_FIDELITY`` provides a
    process-wide default. The value is validated and normalized to the
    tier's string name.
    """
    from repro.sim.fluid import Fidelity

    if override is None:
        override = _SCOPED["fidelity"]
    if override is None:
        override = os.environ.get("REPRO_FIDELITY") or "exact"
    return Fidelity.coerce(override).value


@contextmanager
def campaign(jobs: Optional[int] = None, cache: Optional[bool] = None,
             cache_dir: Optional[str] = None,
             fault_plan: Optional[FaultPlan] = None,
             fidelity: Optional[str] = None,
             trace_path: Optional[str] = None,
             metrics_path: Optional[str] = None):
    """Scope campaign-wide parallelism/caching/fault defaults.

    Used by :func:`repro.experiments.registry.run_all` and the CLI so the
    individual figure modules keep their simple ``run(runs, frames)``
    signatures while still fanning out.

    ``trace_path`` / ``metrics_path`` request a telemetry export: the
    first repetition executed inside the scope re-runs instrumented
    (span tracer + substrate timeline — bit-identical results, see
    ``docs/observability.md``) and its merged Chrome trace / metrics dump
    is written to the given files. One export per scope.
    """
    previous = dict(_SCOPED)
    if jobs is not None:
        _SCOPED["jobs"] = jobs
    if cache is not None:
        _SCOPED["cache"] = cache
    if cache_dir is not None:
        _SCOPED["cache_dir"] = cache_dir
    if fault_plan is not None:
        _SCOPED["fault_plan"] = fault_plan
    if fidelity is not None:
        _SCOPED["fidelity"] = fidelity
    if trace_path is not None or metrics_path is not None:
        _SCOPED["trace_path"] = trace_path
        _SCOPED["metrics_path"] = metrics_path
        _SCOPED["telemetry_done"] = False
    try:
        yield
    finally:
        _SCOPED.clear()
        _SCOPED.update(previous)


def _maybe_injected_worker_fault(seed: int) -> None:
    """Test hook: simulate a crashed or hung campaign worker.

    Only ever fires inside a worker *process* (never in-process serial
    runs) and only when ``REPRO_WORKER_FAULT_DIR`` points at a directory.
    ``REPRO_WORKER_CRASH_SEEDS`` / ``REPRO_WORKER_HANG_SEEDS`` name task
    seeds whose first execution hard-exits (as a kill -9 would) or sleeps
    ``REPRO_WORKER_HANG_SECONDS``; a marker file in the fault directory
    makes each fault one-shot so the retry succeeds. This is how the
    tests exercise the crash-detection and timeout paths without racing
    real signals against the executor.
    """
    fault_dir = os.environ.get("REPRO_WORKER_FAULT_DIR")
    if not fault_dir or multiprocessing.parent_process() is None:
        return

    def _armed(kind: str, var: str) -> bool:
        raw = os.environ.get(var, "")
        if not any(s and int(s) == seed for s in raw.split(",")):
            return False
        marker = os.path.join(fault_dir, f"{kind}-{seed}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False  # already fired once
        os.close(fd)
        return True

    if _armed("crash", "REPRO_WORKER_CRASH_SEEDS"):
        os._exit(17)  # skip interpreter teardown: looks like a killed worker
    if _armed("hang", "REPRO_WORKER_HANG_SEEDS"):
        time.sleep(float(os.environ.get("REPRO_WORKER_HANG_SECONDS", "5")))


def _claim_telemetry() -> Optional[tuple]:
    """One-shot claim of the scope's telemetry export request.

    Returns ``(trace_path, metrics_path)`` exactly once per campaign
    scope (the first :func:`run_campaign` wins — typically the first
    figure cell), ``None`` otherwise.
    """
    if _SCOPED["telemetry_done"]:
        return None
    trace_path = _SCOPED["trace_path"]
    metrics_path = _SCOPED["metrics_path"]
    if trace_path is None and metrics_path is None:
        return None
    _SCOPED["telemetry_done"] = True
    return trace_path, metrics_path


def _export_telemetry(result: WorkflowResult, trace_path: Optional[str],
                      metrics_path: Optional[str]) -> None:
    """Write an instrumented repetition's telemetry to the requested files."""
    from repro.perf.metrics import write_chrome_trace

    if trace_path is not None:
        write_chrome_trace(trace_path, result.tracer, result.metrics)
        print(f"wrote {trace_path}")
    if metrics_path is not None:
        if str(metrics_path).endswith(".csv"):
            result.metrics.write_csv(metrics_path)
        else:
            result.metrics.write_json(metrics_path)
        print(f"wrote {metrics_path}")


def _execute_task(task: RunTask) -> WorkflowResult:
    """Worker entry point: run one repetition (must stay module-level so
    the spawn start method can import it by qualified name)."""
    _maybe_injected_worker_fault(task.seed)
    return run_workflow(
        task.spec, seed=task.seed, jitter_cv=task.jitter_cv,
        fault_plan=task.fault_plan, invariants=task.invariants,
        fidelity=task.fidelity, **task.system_configs,
    )


def _default_task_timeout(override: Optional[float]) -> Optional[float]:
    """Per-task wall-clock budget: explicit > ``REPRO_TASK_TIMEOUT`` > none."""
    if override is None:
        raw = os.environ.get("REPRO_TASK_TIMEOUT", "")
        override = float(raw) if raw else None
    if override is not None and override <= 0:
        raise ReproError(f"task_timeout must be positive, got {override}")
    return override


def _default_task_retries(override: Optional[int]) -> int:
    """Re-submission budget: explicit > ``REPRO_TASK_RETRIES`` > 2."""
    if override is None:
        override = int(os.environ.get("REPRO_TASK_RETRIES", "2"))
    if override < 0:
        raise ReproError(f"max_task_retries must be >= 0, got {override}")
    return override


def run_campaign(
    tasks: Sequence[RunTask],
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    task_timeout: Optional[float] = None,
    max_task_retries: Optional[int] = None,
) -> List[WorkflowResult]:
    """Run ``tasks``, in order, with optional process fan-out and caching.

    Results are positionally aligned with ``tasks`` and bit-identical to a
    serial run: each task is a pure function of its fields, and caching
    stores the exact :class:`WorkflowResult` a cold run produced.

    The parallel path is hardened against infrastructure failures:

    - every completed repetition is stored into the cache *immediately*,
      so an interrupted campaign resumes from its survivors on the next
      invocation instead of recomputing them;
    - a worker process dying (OOM kill, ``kill -9``, segfault) breaks the
      pool — the unfinished tasks are re-submitted to a fresh pool, up to
      ``max_task_retries`` extra attempts each (then
      :class:`~repro.errors.CampaignError`);
    - ``task_timeout`` bounds each task's wall-clock time; a round whose
      stragglers exceed the budget is abandoned (without waiting on hung
      workers) and its unfinished tasks re-submitted the same way.

    Exceptions raised *by the simulation itself* (``StallError``, config
    errors, …) are deterministic — retrying cannot help — and propagate
    immediately.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    jobs = default_jobs(jobs)
    task_timeout = _default_task_timeout(task_timeout)
    max_task_retries = _default_task_retries(max_task_retries)
    results: List[Optional[WorkflowResult]] = [None] * len(tasks)

    cache = None
    keys: List[Optional[str]] = [None] * len(tasks)
    if _default_cache(use_cache):
        from repro.experiments.persist import ResultCache

        cache = ResultCache(cache_dir if cache_dir is not None
                            else _SCOPED["cache_dir"])
        for i, task in enumerate(tasks):
            keys[i] = cache.key(
                task.spec, task.seed, task.jitter_cv, task.system_configs,
                task.fault_plan, task.invariants, task.fidelity,
            )
            results[i] = cache.load(keys[i])

    telemetry = _claim_telemetry()
    if telemetry is not None:
        # Re-run the campaign's first repetition instrumented (tracer +
        # substrate timeline) in-process and export it. Telemetry is pure
        # observation, so this result is bit-identical to the plain run —
        # but it carries the instrument payloads, so it bypasses the
        # cache in both directions (load above is overwritten, key
        # cleared so _complete never stores it).
        task = tasks[0]
        instrumented = run_workflow(
            task.spec, seed=task.seed, jitter_cv=task.jitter_cv,
            trace=True, metrics=True, fault_plan=task.fault_plan,
            invariants=task.invariants, fidelity=task.fidelity,
            **task.system_configs,
        )
        _export_telemetry(instrumented, *telemetry)
        results[0] = instrumented
        keys[0] = None

    def _complete(i: int, result: WorkflowResult) -> None:
        results[i] = result
        if cache is not None and keys[i] is not None:
            cache.store(keys[i], result)

    pending = [i for i, r in enumerate(results) if r is None]
    if not pending:
        return results  # type: ignore[return-value]

    if jobs == 1 or len(pending) == 1:
        for i in pending:
            _complete(i, _execute_task(tasks[i]))
        return results  # type: ignore[return-value]

    attempts = {i: 0 for i in pending}
    while pending:
        workers = min(jobs, len(pending))
        # Upper bound for the whole round if every task used its full
        # per-task budget on a fully-loaded pool.
        round_timeout = (
            task_timeout * math.ceil(len(pending) / workers)
            if task_timeout is not None else None
        )
        broken = False
        pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=get_context(_START_METHOD)
        )
        try:
            futures = {pool.submit(_execute_task, tasks[i]): i
                       for i in pending}
            try:
                for future in as_completed(futures, timeout=round_timeout):
                    _complete(futures[future], future.result())
            except BrokenProcessPool:
                broken = True  # a worker died; survivors are already stored
            except FuturesTimeout:
                broken = True  # straggler past the budget; treat like a crash
            except BaseException:
                # Deterministic simulation error (StallError, ConfigError,
                # KeyboardInterrupt, ...): don't join in-flight work, just
                # propagate. Completed repetitions are already cached.
                broken = True
                raise
        finally:
            # Never join a broken/hung pool: cancel what never started and
            # leave stragglers to die on their own.
            pool.shutdown(wait=not broken, cancel_futures=broken)
        if not broken:
            break
        pending = [i for i in pending if results[i] is None]
        for i in pending:
            attempts[i] += 1
            if attempts[i] > max_task_retries:
                task = tasks[i]
                raise CampaignError(
                    f"task seed={task.seed} failed {attempts[i]} times "
                    f"(crashed or timed-out worker); giving up after "
                    f"{max_task_retries} retries. Completed results are "
                    "cached; re-run to resume."
                )
    return results  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# determinism fingerprinting
# ---------------------------------------------------------------------------

def _canonical(result: WorkflowResult) -> Dict[str, Any]:
    """Canonical, JSON-stable view of everything a repetition measured."""
    return {
        "spec": repr(result.spec),
        "seed": result.seed,
        "makespan": result.makespan.hex(),
        "producer_trees": [t.to_dict() for t in result.producer_trees],
        "consumer_trees": [t.to_dict() for t in result.consumer_trees],
        "system_stats": {k: float(v).hex()
                         for k, v in sorted(result.system_stats.items())},
    }


def result_fingerprint(result: WorkflowResult) -> str:
    """SHA-256 over a canonical serialization of a result.

    Floats are rendered with ``float.hex`` so the digest distinguishes
    even sub-ULP differences — this is the "bit-identical" in the
    serial-vs-parallel determinism guarantee.
    """

    def _floats(obj: Any) -> Any:
        if isinstance(obj, float):
            return obj.hex()
        if isinstance(obj, dict):
            return {k: _floats(v) for k, v in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [_floats(v) for v in obj]
        return obj

    payload = json.dumps(_floats(_canonical(result)), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
