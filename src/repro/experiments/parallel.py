"""Parallel, cached execution of workflow-repetition campaigns.

The paper's evaluation is a campaign of ~12 experiments × up to 10
repetitions per configuration. Every repetition is an independent,
deterministic function of ``(spec, seed, jitter_cv, system configs)``, so
the campaign is embarrassingly parallel: this module fans repetitions out
across worker *processes* (the DES kernel is pure Python, so threads would
serialize on the GIL) and memoizes each repetition in the on-disk result
cache of :mod:`repro.experiments.persist`.

Three knobs, in increasing precedence:

- ``REPRO_JOBS`` / ``REPRO_CACHE`` / ``REPRO_CACHE_DIR`` environment
  variables (process-wide defaults);
- :func:`campaign` — a context manager the bulk runner and the CLI use to
  scope ``--jobs`` / ``--no-cache`` around a whole campaign without
  threading arguments through every figure module;
- explicit ``jobs=`` / ``use_cache=`` arguments to
  :func:`repro.workflow.runner.run_repetitions` or :func:`run_campaign`.

Workers use the ``spawn`` start method: each worker is a fresh
interpreter, so the executor never depends on fork-shared state and
behaves identically on Linux/macOS/Windows. Determinism is load-bearing:
results are returned in task order and each worker computes exactly what
the serial path would, so ``jobs=N`` output is bit-identical to ``jobs=1``
(asserted by ``tests/experiments/test_parallel.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.workflow.runner import WorkflowResult, run_workflow
from repro.workflow.spec import WorkflowSpec

__all__ = [
    "RunTask",
    "campaign",
    "default_jobs",
    "run_campaign",
    "result_fingerprint",
]

#: Start method for worker processes. ``spawn`` is slower to start than
#: ``fork`` but safe regardless of importing-process state (threads, open
#: files) and uniform across platforms.
_START_METHOD = "spawn"

# Campaign-scoped defaults installed by :func:`campaign`. ``None`` means
# "fall through to the environment".
_SCOPED: Dict[str, Any] = {"jobs": None, "cache": None, "cache_dir": None}


@dataclass(frozen=True)
class RunTask:
    """One repetition: a pure function of its fields.

    ``system_configs`` holds the optional ``dyad_config`` /
    ``xfs_config`` / ``lustre_config`` keyword arguments of
    :func:`repro.workflow.runner.run_workflow`.
    """

    spec: WorkflowSpec
    seed: int
    jitter_cv: float = 0.0
    system_configs: Dict[str, Any] = field(default_factory=dict)


def default_jobs(override: Optional[int] = None) -> int:
    """Resolve the worker count: explicit > campaign scope > env > 1."""
    if override is None:
        override = _SCOPED["jobs"]
    if override is None:
        override = os.environ.get("REPRO_JOBS", "1")
    jobs = int(override)
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _default_cache(override: Optional[bool] = None) -> bool:
    """Resolve cache usage: explicit > campaign scope > env > off."""
    if override is not None:
        return bool(override)
    if _SCOPED["cache"] is not None:
        return bool(_SCOPED["cache"])
    return os.environ.get("REPRO_CACHE", "0") == "1"


@contextmanager
def campaign(jobs: Optional[int] = None, cache: Optional[bool] = None,
             cache_dir: Optional[str] = None):
    """Scope campaign-wide parallelism/caching defaults.

    Used by :func:`repro.experiments.registry.run_all` and the CLI so the
    individual figure modules keep their simple ``run(runs, frames)``
    signatures while still fanning out.
    """
    previous = dict(_SCOPED)
    if jobs is not None:
        _SCOPED["jobs"] = jobs
    if cache is not None:
        _SCOPED["cache"] = cache
    if cache_dir is not None:
        _SCOPED["cache_dir"] = cache_dir
    try:
        yield
    finally:
        _SCOPED.update(previous)


def _execute_task(task: RunTask) -> WorkflowResult:
    """Worker entry point: run one repetition (must stay module-level so
    the spawn start method can import it by qualified name)."""
    return run_workflow(
        task.spec, seed=task.seed, jitter_cv=task.jitter_cv,
        **task.system_configs,
    )


def run_campaign(
    tasks: Sequence[RunTask],
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> List[WorkflowResult]:
    """Run ``tasks``, in order, with optional process fan-out and caching.

    Results are positionally aligned with ``tasks`` and bit-identical to a
    serial run: each task is a pure function of its fields, and caching
    stores the exact :class:`WorkflowResult` a cold run produced.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    jobs = default_jobs(jobs)
    results: List[Optional[WorkflowResult]] = [None] * len(tasks)

    cache = None
    keys: List[Optional[str]] = [None] * len(tasks)
    if _default_cache(use_cache):
        from repro.experiments.persist import ResultCache

        cache = ResultCache(cache_dir if cache_dir is not None
                            else _SCOPED["cache_dir"])
        for i, task in enumerate(tasks):
            keys[i] = cache.key(
                task.spec, task.seed, task.jitter_cv, task.system_configs
            )
            results[i] = cache.load(keys[i])

    pending = [i for i, r in enumerate(results) if r is None]
    if pending:
        if jobs == 1 or len(pending) == 1:
            for i in pending:
                results[i] = _execute_task(tasks[i])
        else:
            workers = min(jobs, len(pending))
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=get_context(_START_METHOD)
            ) as pool:
                computed = pool.map(
                    _execute_task,
                    [tasks[i] for i in pending],
                    chunksize=max(1, len(pending) // (4 * workers)),
                )
                for i, result in zip(pending, computed):
                    results[i] = result
        if cache is not None:
            for i in pending:
                cache.store(keys[i], results[i])
    return results  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# determinism fingerprinting
# ---------------------------------------------------------------------------

def _canonical(result: WorkflowResult) -> Dict[str, Any]:
    """Canonical, JSON-stable view of everything a repetition measured."""
    return {
        "spec": repr(result.spec),
        "seed": result.seed,
        "makespan": result.makespan.hex(),
        "producer_trees": [t.to_dict() for t in result.producer_trees],
        "consumer_trees": [t.to_dict() for t in result.consumer_trees],
        "system_stats": {k: float(v).hex()
                         for k, v in sorted(result.system_stats.items())},
    }


def result_fingerprint(result: WorkflowResult) -> str:
    """SHA-256 over a canonical serialization of a result.

    Floats are rendered with ``float.hex`` so the digest distinguishes
    even sub-ULP differences — this is the "bit-identical" in the
    serial-vs-parallel determinism guarantee.
    """

    def _floats(obj: Any) -> Any:
        if isinstance(obj, float):
            return obj.hex()
        if isinstance(obj, dict):
            return {k: _floats(v) for k, v in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [_floats(v) for v in obj]
        return obj

    payload = json.dumps(_floats(_canonical(result)), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
