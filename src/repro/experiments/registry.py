"""Experiment registry and bulk runner."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.experiments import (
    ablations,
    chaos_soak,
    extension_fanout,
    resilience,
    streaming,
    topology,
    validate,
    fig5_single_node,
    fig6_two_node,
    fig7_multi_node,
    fig8_model_scaling,
    fig9_dyad_calltree,
    fig10_lustre_calltree,
    fig11_jac_stride,
    fig12_stmv_stride,
    tables,
)

__all__ = ["EXPERIMENTS", "get_experiment", "run_all"]

#: name -> module with ``run``/``main`` entry points
EXPERIMENTS: Dict[str, object] = {
    "tables": tables,
    "fig5": fig5_single_node,
    "fig6": fig6_two_node,
    "fig7": fig7_multi_node,
    "fig8": fig8_model_scaling,
    "fig9": fig9_dyad_calltree,
    "fig10": fig10_lustre_calltree,
    "fig11": fig11_jac_stride,
    "fig12": fig12_stmv_stride,
    "ablations": ablations,
    "fanout": extension_fanout,
    "topology": topology,
    "resilience": resilience,
    "streaming": streaming,
    "chaos": chaos_soak,
    "validate": validate,
}


def get_experiment(name: str):
    """Experiment module by registry name."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise ReproError(f"unknown experiment {name!r} (known: {known})") from None


def run_all(quick: bool = False, jobs: Optional[int] = None,
            use_cache: Optional[bool] = None,
            cache_dir: Optional[str] = None) -> List[object]:
    """Run every experiment in paper order, printing each report.

    ``jobs``/``use_cache``/``cache_dir`` scope campaign-wide parallelism
    and result caching around all experiments (see
    :mod:`repro.experiments.parallel`); ``None`` falls through to the
    ``REPRO_JOBS``/``REPRO_CACHE``/``REPRO_CACHE_DIR`` environment.
    """
    from repro.experiments.parallel import campaign

    results = []
    with campaign(jobs=jobs, cache=use_cache, cache_dir=cache_dir):
        for name, module in EXPERIMENTS.items():
            print(f"\n################ {name} ################")
            results.append(
                module.main(quick=quick) if name != "tables" else module.main()
            )
    return results
