"""Chaos — seeded random fault plans soaked against the invariant checker.

Not a paper figure: a robustness gate. Each run draws a random (but
seeded, hence fully reproducible) fault plan against a small workload
grid and executes it with the invariant checker armed and fatal; the
soak passes when every plan either completes with zero invariant
violations or fails *diagnosed* (a typed error naming a cause). A
violation or an untyped crash fails the gate, and the offending plan is
shrunk to a minimal JSON repro (see :mod:`repro.chaos`) that
``python -m repro.experiments --fault-plan`` can replay.

CI runs ``python -m repro.experiments chaos --quick`` on every push
(the ``chaos-smoke`` job) and uploads the shrunk plan artifact whenever
the gate trips.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.chaos import ChaosReport, chaos_workloads, execute_plan, soak
from repro.errors import CampaignError

__all__ = ["run", "replay", "main", "DEFAULT_PLANS", "QUICK_PLANS"]

#: Plans per full / quick soak. Quick stays near 20 seeded plans — small
#: enough for a CI smoke job, large enough to cycle the workload grid
#: five times with different fault mixes.
DEFAULT_PLANS = 60
QUICK_PLANS = 20


def replay(plan, frames: int = 8, streaming: bool = False,
           topology: bool = False) -> ChaosReport:
    """Replay one plan (e.g. a shrunk repro) across the workload grid.

    Each workload runs the plan checked-and-fatal under its grid seed;
    exact reproduction of a *specific* soak failure uses the seed the
    soak report printed (``repro.chaos.execute_plan(spec, plan,
    seed=<printed>)``) — the grid sweep here is the smoke version.
    """
    report = ChaosReport(base_seed=0)
    for i, spec in enumerate(chaos_workloads(frames, streaming=streaming,
                                             topology=topology)):
        report.outcomes.append(execute_plan(spec, plan, seed=i))
    return report


def run(runs: Optional[int] = None, frames: Optional[int] = None,
        quick: bool = False, streaming: bool = False,
        topology: bool = False) -> ChaosReport:
    """Run the soak; ``runs`` overrides the plan count.

    A campaign-scoped fault plan (the CLI's ``--fault-plan FILE``)
    switches to :func:`replay` mode — the deserialized plan runs across
    the workload grid instead of a random soak.

    ``streaming=True`` (the CLI's ``--streaming``) soaks/replays the
    streaming workload grid — windowed/pubsub/nbuffer pipelines whose
    failure modes are flow-control: leaked credits, lost watch wake-ups,
    backpressure deadlocks (see ``docs/streaming.md``).

    ``topology=True`` (the CLI's ``--topology``) soaks/replays the
    non-pairwise workload grid — fan-out/fan-in/pool shapes whose
    failure modes live in the shared-read single-flight tier, the
    per-edge credit ledgers, and the aggregation/pool drain invariants
    (see ``docs/topologies.md``).

    ``REPRO_CHAOS_ARTIFACTS`` names the directory the shrunk repro (if
    any) is serialized into (CI points it at the upload path).
    """
    from repro.experiments.parallel import default_fault_plan

    frames = frames if frames is not None else 8
    scoped = default_fault_plan()
    if scoped is not None:
        return replay(scoped, frames=frames, streaming=streaming,
                      topology=topology)
    plans = runs if runs is not None else (
        QUICK_PLANS if quick else DEFAULT_PLANS
    )
    artifact_dir = os.environ.get("REPRO_CHAOS_ARTIFACTS") or None
    return soak(plans=plans, base_seed=0, frames=frames,
                artifact_dir=artifact_dir, streaming=streaming,
                topology=topology)


def main(quick: bool = False, streaming: bool = False,
         topology: bool = False) -> ChaosReport:
    """Run, print, and *gate* the soak (raises on violations/crashes)."""
    report = run(quick=quick, streaming=streaming, topology=topology)
    print(report.render())
    if report.failures:
        raise CampaignError(
            f"chaos soak failed: {len(report.failures)} plan(s) violated "
            "invariants or crashed (see the shrunk repro artifact)"
        )
    return report


if __name__ == "__main__":
    main()
