"""Fig. 12 — frame generation frequency scaling with STMV: DYAD vs Lustre.

Strides of 1/5/10/50 MD steps (a 28.48 MiB frame every ~29 ms to ~1.5 s),
2 nodes, 16 pairs, 128 frames.

Paper's headline numbers:
- (a) DYAD production ≈ 2.0× faster than Lustre; movement roughly
  constant across strides (Lustre with contention variability);
- (b) DYAD's data movement *improves* up to ≈ 1.4× as stride grows
  (lower network/storage contention at lower frame rates), while
  Lustre's stays flat; overall DYAD is 13.0-192.2× faster, the gap
  widening with stride as idle dominates.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import FigureResult, default_frames, default_runs, measure
from repro.md.models import STMV
from repro.workflow.spec import Placement, System, WorkflowSpec

__all__ = ["STRIDES", "PAPER", "run", "main"]

STRIDES = (1, 5, 10, 50)
PAIRS = 16

PAPER = {
    "production_ratio_lustre_over_dyad": 2.0,
    "dyad_movement_improvement_high_stride": 1.4,
    "consumption_ratio_band": (13.0, 192.2),
}


def run(runs: Optional[int] = None, frames: Optional[int] = None,
        quick: bool = False) -> FigureResult:
    """Measure the Fig. 12 grid."""
    runs = default_runs(1 if quick else runs)
    frames = default_frames(16 if quick else frames)
    cells = {}
    for stride in STRIDES:
        for system in (System.DYAD, System.LUSTRE):
            spec = WorkflowSpec(
                system=system, model=STMV, stride=stride,
                frames=frames, pairs=PAIRS, placement=Placement.SPLIT,
            )
            cell, _ = measure(spec, runs=runs)
            cells[(stride, system.value)] = cell
    fig = FigureResult(
        figure_id="Fig12",
        title="frame frequency scaling, STMV, 16 pairs (DYAD vs Lustre)",
        x_name="stride",
        xs=list(STRIDES),
        systems=[System.DYAD.value, System.LUSTRE.value],
        cells=cells,
        runs=runs,
        frames=frames,
    )
    lo, hi = STRIDES[0], STRIDES[-1]
    dyad_improvement = (
        cells[(lo, "dyad")].consumption_movement.mean
        / cells[(hi, "dyad")].consumption_movement.mean
        if cells[(hi, "dyad")].consumption_movement.mean
        else 0.0
    )
    fig.notes = [
        f"production movement lustre/dyad = "
        f"{fig.ratio('production_movement', 'lustre', 'dyad'):.2f}x "
        f"(paper: {PAPER['production_ratio_lustre_over_dyad']}x)",
        f"dyad consumption movement improvement stride {lo}->{hi}: "
        f"{dyad_improvement:.2f}x "
        f"(paper: up to {PAPER['dyad_movement_improvement_high_stride']}x)",
        f"overall consumption lustre/dyad: stride {lo}: "
        f"{fig.ratio('consumption_time', 'lustre', 'dyad', x=lo):.1f}x, "
        f"stride {hi}: "
        f"{fig.ratio('consumption_time', 'lustre', 'dyad', x=hi):.1f}x "
        f"(paper band: {PAPER['consumption_ratio_band']}, widening)",
    ]
    return fig


def main(quick: bool = False) -> FigureResult:
    """Run and print Fig. 12."""
    fig = run(quick=quick)
    print(fig.render())
    return fig


if __name__ == "__main__":
    main()
