"""Dependency-free SVG rendering of figure results.

Produces the visual equivalent of the paper's bar charts: grouped,
stacked bars (data movement + idle per frame) with error whiskers, one
group per x-value, one bar per system — as standalone SVG files.
No plotting library required (the environment is offline).

Used by the CLI: ``python -m repro.experiments fig8 --svg-dir figures/``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.experiments.common import FigureResult
from repro.units import to_msec

__all__ = ["render_figure_svg", "save_figure_svg", "BarChart"]

# Paper-like styling: red-striped movement, blue-striped idle is rendered
# as solid fills with distinguishable lightness per system.
_SYSTEM_COLORS = {
    "dyad": ("#c23b22", "#e8a79b"),      # movement, idle
    "xfs": ("#1f5fa6", "#9ec1e3"),
    "lustre": ("#3a7d44", "#a9d3b0"),
}
_FALLBACK_COLORS = [("#555555", "#bbbbbb"), ("#8a6d3b", "#d9c9a3")]


def _esc(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


@dataclass
class BarChart:
    """A grouped stacked-bar chart, rendered to SVG text."""

    title: str
    x_labels: Sequence[str]
    series: Sequence[str]                       # one bar per series per group
    movement: Sequence[Sequence[float]]         # [series][group] values
    idle: Sequence[Sequence[float]]
    whisker: Optional[Sequence[Sequence[float]]] = None
    y_label: str = "ms per frame"
    log_scale: bool = False
    width: int = 760
    height: int = 420

    def validate(self) -> None:
        """Raise :class:`ReproError` on ragged input."""
        n_series, n_groups = len(self.series), len(self.x_labels)
        for grid, name in ((self.movement, "movement"), (self.idle, "idle")):
            if len(grid) != n_series or any(len(row) != n_groups for row in grid):
                raise ReproError(f"{name} grid must be [series][group]")
        if self.whisker is not None and (
            len(self.whisker) != n_series
            or any(len(row) != n_groups for row in self.whisker)
        ):
            raise ReproError("whisker grid must be [series][group]")

    # -- scales ------------------------------------------------------------
    def _totals(self) -> List[List[float]]:
        return [
            [m + i for m, i in zip(mrow, irow)]
            for mrow, irow in zip(self.movement, self.idle)
        ]

    def _y_transform(self):
        totals = [v for row in self._totals() for v in row]
        vmax = max(totals) if totals else 1.0
        if vmax <= 0:
            vmax = 1.0
        if self.log_scale:
            positives = [v for v in totals if v > 0]
            vmin = min(positives) if positives else 0.1
            lo = math.floor(math.log10(vmin))
            hi = math.ceil(math.log10(vmax * 1.05))
            if hi <= lo:
                hi = lo + 1

            def scale(value: float) -> float:
                if value <= 0:
                    return 0.0
                return (math.log10(value) - lo) / (hi - lo)

            ticks = [10.0 ** e for e in range(lo, hi + 1)]
            return scale, ticks
        top = vmax * 1.1

        def scale(value: float) -> float:
            return max(value, 0.0) / top

        n_ticks = 5
        ticks = [top * i / n_ticks for i in range(n_ticks + 1)]
        return scale, ticks

    # -- rendering ------------------------------------------------------------
    def to_svg(self) -> str:
        """Render the chart as an SVG document string."""
        self.validate()
        margin_l, margin_r, margin_t, margin_b = 70, 20, 48, 64
        plot_w = self.width - margin_l - margin_r
        plot_h = self.height - margin_t - margin_b
        scale, ticks = self._y_transform()

        def y_of(value: float) -> float:
            return margin_t + plot_h * (1.0 - scale(value))

        parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" font-family="sans-serif">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{self.width / 2}" y="24" text-anchor="middle" '
            f'font-size="15" font-weight="bold">{_esc(self.title)}</text>',
            # y axis label
            f'<text x="16" y="{margin_t + plot_h / 2}" text-anchor="middle" '
            f'font-size="12" transform="rotate(-90 16 {margin_t + plot_h / 2})">'
            f'{_esc(self.y_label)}</text>',
        ]
        # gridlines + tick labels
        for tick in ticks:
            y = y_of(tick)
            parts.append(
                f'<line x1="{margin_l}" y1="{y:.1f}" '
                f'x2="{margin_l + plot_w}" y2="{y:.1f}" '
                'stroke="#dddddd" stroke-width="1"/>'
            )
            label = f"{tick:g}"
            parts.append(
                f'<text x="{margin_l - 6}" y="{y + 4:.1f}" text-anchor="end" '
                f'font-size="11">{_esc(label)}</text>'
            )

        n_groups = len(self.x_labels)
        n_series = len(self.series)
        group_w = plot_w / max(n_groups, 1)
        bar_w = group_w * 0.7 / max(n_series, 1)

        for gi, x_label in enumerate(self.x_labels):
            group_x = margin_l + gi * group_w + group_w * 0.15
            for si, series in enumerate(self.series):
                move_color, idle_color = _SYSTEM_COLORS.get(
                    series, _FALLBACK_COLORS[si % len(_FALLBACK_COLORS)]
                )
                x = group_x + si * bar_w
                move = self.movement[si][gi]
                total = move + self.idle[si][gi]
                y_total, y_move = y_of(total), y_of(move)
                base = margin_t + plot_h
                # idle segment on top of movement
                if total > move:
                    parts.append(
                        f'<rect x="{x:.1f}" y="{y_total:.1f}" '
                        f'width="{bar_w * 0.9:.1f}" '
                        f'height="{max(y_move - y_total, 0.5):.1f}" '
                        f'fill="{idle_color}" stroke="#444" stroke-width="0.5"/>'
                    )
                if move > 0:
                    parts.append(
                        f'<rect x="{x:.1f}" y="{y_move:.1f}" '
                        f'width="{bar_w * 0.9:.1f}" '
                        f'height="{max(base - y_move, 0.5):.1f}" '
                        f'fill="{move_color}" stroke="#444" stroke-width="0.5"/>'
                    )
                if self.whisker is not None:
                    err = self.whisker[si][gi]
                    if err > 0:
                        cx = x + bar_w * 0.45
                        y_hi, y_lo = y_of(total + err), y_of(max(total - err, 0))
                        parts.append(
                            f'<line x1="{cx:.1f}" y1="{y_hi:.1f}" '
                            f'x2="{cx:.1f}" y2="{y_lo:.1f}" '
                            'stroke="#111" stroke-width="1"/>'
                        )
            parts.append(
                f'<text x="{margin_l + gi * group_w + group_w / 2:.1f}" '
                f'y="{margin_t + plot_h + 18}" text-anchor="middle" '
                f'font-size="12">{_esc(x_label)}</text>'
            )

        # axis line + legend
        parts.append(
            f'<line x1="{margin_l}" y1="{margin_t + plot_h}" '
            f'x2="{margin_l + plot_w}" y2="{margin_t + plot_h}" '
            'stroke="#000" stroke-width="1"/>'
        )
        legend_x = margin_l
        legend_y = self.height - 20
        for si, series in enumerate(self.series):
            move_color, idle_color = _SYSTEM_COLORS.get(
                series, _FALLBACK_COLORS[si % len(_FALLBACK_COLORS)]
            )
            x = legend_x + si * 190
            parts.append(
                f'<rect x="{x}" y="{legend_y - 10}" width="12" height="12" '
                f'fill="{move_color}"/>'
                f'<text x="{x + 16}" y="{legend_y}" font-size="11">'
                f'{_esc(series)} movement</text>'
                f'<rect x="{x + 104}" y="{legend_y - 10}" width="12" '
                f'height="12" fill="{idle_color}"/>'
                f'<text x="{x + 120}" y="{legend_y}" font-size="11">idle</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)


def render_figure_svg(fig: FigureResult, which: str = "consumption",
                      log_scale: bool = True) -> str:
    """SVG for one panel (``production`` or ``consumption``) of a figure."""
    if which not in ("production", "consumption"):
        raise ReproError(f"unknown panel {which!r}")
    movement, idle, whisker = [], [], []
    for system in fig.systems:
        movement.append([
            to_msec(getattr(fig.cell(x, system), f"{which}_movement").mean)
            for x in fig.xs
        ])
        idle.append([
            to_msec(getattr(fig.cell(x, system), f"{which}_idle").mean)
            for x in fig.xs
        ])
        whisker.append([
            to_msec(math.hypot(
                getattr(fig.cell(x, system), f"{which}_movement").std,
                getattr(fig.cell(x, system), f"{which}_idle").std,
            ))
            for x in fig.xs
        ])
    chart = BarChart(
        title=f"{fig.figure_id} {which} time per frame — {fig.title}",
        x_labels=[str(x) for x in fig.xs],
        series=list(fig.systems),
        movement=movement,
        idle=idle,
        whisker=whisker,
        y_label="ms per frame (log)" if log_scale else "ms per frame",
        log_scale=log_scale,
    )
    return chart.to_svg()


def save_figure_svg(fig: FigureResult, directory, log_scale: bool = True) -> List[str]:
    """Write both panels of a figure; returns the file paths."""
    import os

    os.makedirs(directory, exist_ok=True)
    paths = []
    for which in ("production", "consumption"):
        path = os.path.join(
            directory, f"{fig.figure_id.lower()}_{which}.svg"
        )
        with open(path, "w") as fh:
            fh.write(render_figure_svg(fig, which, log_scale=log_scale))
        paths.append(path)
    return paths
