"""Fig. 7 — large-scale distributed workflow (2→64 nodes): DYAD vs Lustre.

JAC, stride 880, 128 frames, 8 processes per node, ensembles of
8/16/32/64/128/256 pairs on 2/4/8/16/32/64 nodes (half producers, half
consumers).

Paper's headline numbers:
- (a) production time stable with ensemble size for both systems; DYAD
  ≈ 5.3× faster; Lustre shows more run-to-run variability at 128/256
  pairs (shared-facility interference);
- (b) DYAD consumer data movement ≈ 5.8× faster; overall ≈ 192.0×.

Repetitions scale down with ensemble size so a full reproduction stays
tractable (the mean over pairs is already an average over hundreds of
processes at the large end).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import FigureResult, default_frames, default_runs, measure
from repro.md.models import JAC
from repro.workflow.spec import Placement, System, WorkflowSpec

__all__ = ["PAIRS", "PAPER", "run", "main"]

PAIRS = (8, 16, 32, 64, 128, 256)

PAPER = {
    "production_ratio_lustre_over_dyad": 5.3,
    "consumption_movement_ratio_lustre_over_dyad": 5.8,
    "consumption_ratio_lustre_over_dyad": 192.0,
}


def _runs_for(pairs: int, base_runs: int) -> int:
    """Fewer repetitions for the largest ensembles."""
    if pairs >= 128:
        return max(1, base_runs // 3)
    if pairs >= 64:
        return max(1, base_runs // 2)
    return base_runs


def run(runs: Optional[int] = None, frames: Optional[int] = None,
        quick: bool = False) -> FigureResult:
    """Measure the Fig. 7 grid."""
    base_runs = default_runs(1 if quick else runs)
    frames = default_frames(16 if quick else frames)
    xs = PAIRS[:3] if quick else PAIRS
    cells = {}
    for pairs in xs:
        for system in (System.DYAD, System.LUSTRE):
            spec = WorkflowSpec(
                system=system, model=JAC, stride=JAC.paper_stride,
                frames=frames, pairs=pairs, placement=Placement.SPLIT,
            )
            cell, _ = measure(spec, runs=_runs_for(pairs, base_runs))
            cells[(pairs, system.value)] = cell
    fig = FigureResult(
        figure_id="Fig7",
        title="multi-node ensemble scaling, JAC (DYAD vs Lustre)",
        x_name="pairs",
        xs=list(xs),
        systems=[System.DYAD.value, System.LUSTRE.value],
        cells=cells,
        runs=base_runs,
        frames=frames,
    )
    first, last = xs[0], xs[-1]
    dyad_growth = (
        cells[(last, "dyad")].production_movement.mean
        / cells[(first, "dyad")].production_movement.mean
    )
    lustre_growth = (
        cells[(last, "lustre")].production_movement.mean
        / cells[(first, "lustre")].production_movement.mean
    )
    fig.notes = [
        f"production movement lustre/dyad = "
        f"{fig.ratio('production_movement', 'lustre', 'dyad'):.2f}x "
        f"(paper: {PAPER['production_ratio_lustre_over_dyad']}x)",
        f"consumption movement lustre/dyad = "
        f"{fig.ratio('consumption_movement', 'lustre', 'dyad'):.2f}x "
        f"(paper: {PAPER['consumption_movement_ratio_lustre_over_dyad']}x)",
        f"overall consumption lustre/dyad = "
        f"{fig.ratio('consumption_time', 'lustre', 'dyad'):.1f}x "
        f"(paper: {PAPER['consumption_ratio_lustre_over_dyad']}x)",
        f"production growth {first}->{last} pairs: dyad {dyad_growth:.2f}x, "
        f"lustre {lustre_growth:.2f}x (paper: stable for both)",
    ]
    return fig


def main(quick: bool = False) -> FigureResult:
    """Run and print Fig. 7."""
    fig = run(quick=quick)
    print(fig.render())
    return fig


if __name__ == "__main__":
    main()
