"""Reproduction harness: one module per table/figure of the paper.

Every experiment module exposes

- ``run(runs=None, frames=None, quick=False)`` returning a structured
  result object, and
- ``main()`` printing the same rows/series the paper reports (the
  textual equivalent of the figure) plus the headline ratios with the
  paper's values alongside.

Run from the command line::

    python -m repro.experiments list
    python -m repro.experiments fig5 [--runs N] [--frames N] [--quick]
    python -m repro.experiments all --quick

Environment variables ``REPRO_RUNS`` and ``REPRO_FRAMES`` override the
defaults globally (the paper uses 10 runs × 128 frames; the default here
is 3 runs × 128 frames to keep a full reproduction under a few minutes).
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_all

__all__ = ["EXPERIMENTS", "get_experiment", "run_all"]
