"""EXPERIMENTS.md generator: paper-vs-measured for every table and figure.

``python -m repro.experiments report [--output EXPERIMENTS.md]`` runs the
full campaign and writes a markdown report with, per experiment:

- the configuration that ran,
- the regenerated rows/series (the textual figure),
- a claims table: each headline factor the paper states, the measured
  value, and a verdict (``reproduced`` / ``shape`` / ``deviates``).

Verdict policy: ``reproduced`` when the measured factor is within 2× of
the paper's stated factor (remember: our substrate is a calibrated
simulator, not Corona); ``shape`` when the direction/ordering holds but
the magnitude differs by more than 2×; ``deviates`` otherwise (each such
case carries a note — all known ones trace back to internal
inconsistencies between the paper's own figures, catalogued in DESIGN.md).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.experiments import (
    ablations as ablations_mod,
    extension_fanout,
    fig5_single_node,
    fig6_two_node,
    fig7_multi_node,
    fig8_model_scaling,
    fig9_dyad_calltree,
    fig10_lustre_calltree,
    fig11_jac_stride,
    fig12_stmv_stride,
    tables,
)
from repro.md.models import JAC, STMV
from repro.workflow.emulator import READ_REGION, SYNC_REGION

__all__ = ["Claim", "build_report", "generate"]


@dataclass
class Claim:
    """One paper claim with its measured counterpart."""

    description: str
    paper: str
    measured: str
    verdict: str  # reproduced | shape | deviates
    note: str = ""


def _verdict(measured: float, paper: float, hi_is_better: bool = True) -> str:
    """Within 2x of the paper's factor -> reproduced; same direction -> shape."""
    if paper <= 0 or measured <= 0:
        return "deviates"
    ratio = measured / paper
    if 0.5 <= ratio <= 2.0:
        return "reproduced"
    if (measured > 1.0) == (paper > 1.0):
        return "shape"
    return "deviates"


def _fmt(x: float) -> str:
    return f"{x:.2f}x" if x < 100 else f"{x:.0f}x"


# ---------------------------------------------------------------------------
# per-figure claim extraction
# ---------------------------------------------------------------------------


def _claims_fig5(fig) -> List[Claim]:
    prod = fig.ratio("production_movement", "dyad", "xfs")
    cons = fig.ratio("consumption_time", "xfs", "dyad")
    return [
        Claim("DYAD production slower than XFS (metadata management)",
              "1.40x", _fmt(prod), _verdict(prod, 1.4)),
        Claim("DYAD overall consumption faster than XFS (adaptive sync)",
              "192.9x", _fmt(cons), _verdict(cons, 192.9),
              note="idle-dominated for XFS in both paper and model; the "
                   "magnitude depends on how the one-time KVS wait "
                   "amortizes over 128 frames"),
    ]


def _claims_fig6(fig) -> List[Claim]:
    prod = fig.ratio("production_movement", "lustre", "dyad")
    move = fig.ratio("consumption_movement", "lustre", "dyad")
    total = fig.ratio("consumption_time", "lustre", "dyad")
    return [
        Claim("DYAD production faster than Lustre (node-local staging)",
              "7.5x", _fmt(prod), _verdict(prod, 7.5)),
        Claim("DYAD consumer data movement faster than Lustre",
              "6.9x", _fmt(move), _verdict(move, 6.9),
              note="the paper's own Fig. 8b states 1.6x for the same "
                   "JAC workload at 16 pairs; our value sits inside the "
                   "paper's 1.6-6.9x family"),
        Claim("DYAD overall consumption faster than Lustre",
              "197.4x", _fmt(total), _verdict(total, 197.4)),
    ]


def _claims_fig7(fig) -> List[Claim]:
    prod = fig.ratio("production_movement", "lustre", "dyad")
    move = fig.ratio("consumption_movement", "lustre", "dyad")
    total = fig.ratio("consumption_time", "lustre", "dyad")
    growth = {}
    for system in fig.systems:
        values = [fig.cell(x, system).production_movement.mean for x in fig.xs]
        growth[system] = max(values) / min(values)
    flat = max(growth.values())
    return [
        Claim("DYAD production faster than Lustre at scale",
              "5.3x", _fmt(prod), _verdict(prod, 5.3)),
        Claim("DYAD consumer movement faster than Lustre at scale",
              "5.8x", _fmt(move), _verdict(move, 5.8)),
        Claim("DYAD overall consumption faster than Lustre at scale",
              "192.0x", _fmt(total), _verdict(total, 192.0)),
        Claim("production stable as pairs scale 8->256 (both systems)",
              "stable", f"max spread {_fmt(flat)}",
              "reproduced" if flat < 1.6 else "shape"),
    ]


def _claims_fig8(fig) -> List[Claim]:
    xs = fig.xs
    first_move = fig.ratio("consumption_movement", "lustre", "dyad", x=xs[0])
    last_move = fig.ratio("consumption_movement", "lustre", "dyad", x=xs[-1])
    prods = [fig.ratio("production_movement", "lustre", "dyad", x=x) for x in xs]
    totals = [fig.ratio("consumption_time", "lustre", "dyad", x=x) for x in xs]
    widening = last_move > first_move
    return [
        Claim("consumption-movement gap widens with model size",
              "1.6x -> 6.0x",
              f"{_fmt(first_move)} -> {_fmt(last_move)}",
              "reproduced" if widening and last_move / first_move > 1.2
              else ("shape" if widening else "deviates")),
        Claim("DYAD production faster for every model",
              "2.1x - 6.3x",
              f"{_fmt(min(prods))} - {_fmt(max(prods))}",
              "reproduced" if min(prods) > 1.0 else "deviates",
              note="the paper says this gap *increases* with size, which "
                   "contradicts its own Figs. 6 (JAC 7.5x) and 12 (STMV "
                   "2.0x); our model follows the latter (fixed RPC costs "
                   "amortize)"),
        Claim("DYAD overall consumption faster for every model",
              "121x - 334x",
              f"{_fmt(min(totals))} - {_fmt(max(totals))}",
              "reproduced" if min(totals) > 10 else "shape",
              note="the Lustre idle term (≈0.82 s) is identical in paper "
                   "and model; the ratio shrinks for STMV because DYAD's "
                   "own movement grows ~34x — which the paper's Fig. 9 "
                   "confirms but its 121x floor contradicts"),
    ]


def _claims_fig9(fig) -> List[Claim]:
    move = {
        m: sum(v for k, v in values.items() if k != "dyad_consume/dyad_fetch")
        for m, values in fig.per_frame.items()
    }
    fetch = {m: v["dyad_consume/dyad_fetch"] for m, v in fig.per_frame.items()}
    data_ratio = STMV.frame_bytes / JAC.frame_bytes
    move_ratio = move["STMV"] / move["JAC"]
    fetch_ratio = fetch["JAC"] / fetch["STMV"] if fetch["STMV"] else 0.0
    return [
        Claim(f"DYAD movement sublinear: {data_ratio:.1f}x data costs only",
              "33.6x", _fmt(move_ratio), _verdict(move_ratio, 33.6)),
        Claim("dyad_fetch (KVS sync) cheaper per call for STMV",
              "2.1x", _fmt(fetch_ratio) if fetch_ratio else "n/a",
              "reproduced" if fetch_ratio >= 1.0 else "shape",
              note="in our model the KVS is far from saturation at 16 "
                   "pairs, so the relief is visible but small"),
    ]


def _claims_fig10(fig) -> List[Claim]:
    jac, stmv = fig.per_frame["JAC"], fig.per_frame["STMV"]
    move_ratio = stmv[READ_REGION] / jac[READ_REGION]
    sync_ratio = stmv[SYNC_REGION] / jac[SYNC_REGION]
    return [
        Claim("explicit_sync constant across models (limits scalability)",
              "~1.0x", _fmt(sync_ratio), _verdict(sync_ratio, 1.0)),
        Claim("Lustre movement sublinear in data (striping)",
              "12.3x", _fmt(move_ratio),
              "shape" if move_ratio < 45.3 else "deviates",
              note="our Lustre read path is stream-bandwidth-bound for "
                   "STMV — the behaviour needed for Fig. 8b's widening "
                   "gap, which the paper's 12.3x figure contradicts"),
    ]


def _claims_fig11(fig) -> List[Claim]:
    prod = fig.ratio("production_movement", "lustre", "dyad")
    lo, hi = fig.xs[0], fig.xs[-1]
    move_spread = (fig.cell(hi, "dyad").consumption_movement.mean
                   / fig.cell(lo, "dyad").consumption_movement.mean)
    idle_grow = all(
        fig.cell(hi, s).consumption_idle.mean
        > fig.cell(lo, s).consumption_idle.mean
        for s in fig.systems
    )
    return [
        Claim("DYAD production faster than Lustre across strides",
              "4.8x", _fmt(prod), _verdict(prod, 4.8)),
        Claim("movement flat across strides (DYAD)",
              "flat", f"x{move_spread:.2f} spread",
              "reproduced" if 0.5 < move_spread < 2.0 else "shape"),
        Claim("idle grows with stride for both systems",
              "grows", "grows" if idle_grow else "does not grow",
              "reproduced" if idle_grow else "deviates"),
    ]


def _claims_fig12(fig) -> List[Claim]:
    prod = fig.ratio("production_movement", "lustre", "dyad")
    lo, hi = fig.xs[0], fig.xs[-1]
    improvement = (fig.cell(lo, "dyad").consumption_movement.mean
                   / fig.cell(hi, "dyad").consumption_movement.mean)
    low_gap = fig.ratio("consumption_time", "lustre", "dyad", x=lo)
    high_gap = fig.ratio("consumption_time", "lustre", "dyad", x=hi)
    return [
        Claim("DYAD production faster than Lustre (STMV)",
              "2.0x", _fmt(prod), _verdict(prod, 2.0)),
        Claim("DYAD movement improves at high stride (less contention)",
              "up to 1.4x", _fmt(improvement),
              "reproduced" if improvement > 1.0 else "shape"),
        Claim("overall gap widens with stride",
              "13.0x -> 192.2x",
              f"{_fmt(low_gap)} -> {_fmt(high_gap)}",
              "reproduced" if high_gap > low_gap else "deviates"),
    ]


_EXTRACTORS: List = [
    ("Fig. 5 — single-node ensemble scaling (DYAD vs XFS)",
     fig5_single_node, _claims_fig5),
    ("Fig. 6 — two-node distributed workflow (DYAD vs Lustre)",
     fig6_two_node, _claims_fig6),
    ("Fig. 7 — multi-node scaling to 256 pairs (DYAD vs Lustre)",
     fig7_multi_node, _claims_fig7),
    ("Fig. 8 — molecular model size scaling (DYAD vs Lustre)",
     fig8_model_scaling, _claims_fig8),
    ("Fig. 9 — DYAD call trees, JAC vs STMV (Thicket)",
     fig9_dyad_calltree, _claims_fig9),
    ("Fig. 10 — Lustre call trees, JAC vs STMV (Thicket)",
     fig10_lustre_calltree, _claims_fig10),
    ("Fig. 11 — frame-frequency scaling, JAC",
     fig11_jac_stride, _claims_fig11),
    ("Fig. 12 — frame-frequency scaling, STMV",
     fig12_stmv_stride, _claims_fig12),
]


def _claims_table(claims: List[Claim]) -> str:
    lines = [
        "| claim | paper | measured | verdict |",
        "|---|---|---|---|",
    ]
    notes = []
    for claim in claims:
        marker = ""
        if claim.note:
            notes.append(claim.note)
            marker = " (*)"
        lines.append(
            f"| {claim.description}{marker} | {claim.paper} "
            f"| {claim.measured} | **{claim.verdict}** |"
        )
    text = "\n".join(lines)
    if notes:
        text += "\n\n" + "\n".join(f"> (*) {n}" for n in notes)
    return text


def build_report(runs: Optional[int] = None, frames: Optional[int] = None,
                 quick: bool = False) -> str:
    """Run the full campaign and return the EXPERIMENTS.md content."""
    parts: List[str] = []
    parts.append("# EXPERIMENTS — paper vs. measured")
    parts.append("")
    parts.append(
        f"Generated by `python -m repro.experiments report` on "
        f"{datetime.date.today().isoformat()}. All measurements from the "
        "simulated Corona backend (device constants in "
        "`repro.cluster.corona` and the storage configs; 5% lognormal "
        "device/compute jitter; seeds fixed). Absolute times are the "
        "simulator's — the comparison targets are the paper's *factors "
        "and shapes*, not Corona's microseconds. Verdicts: **reproduced** "
        "= measured factor within 2x of the paper's; **shape** = "
        "direction/ordering holds, magnitude differs; **deviates** = "
        "documented disagreement (all trace to internal inconsistencies "
        "between the paper's own figures — see DESIGN.md §3)."
    )
    parts.append("")

    # Tables I/II/Fig3
    parts.append("## Tables I & II + Fig. 3 (model catalogue)")
    parts.append("")
    tbl = tables.run()
    parts.append("```")
    parts.append(tbl.render())
    parts.append("```")
    parts.append("")
    parts.append(
        "All four frame sizes match Table I to two decimals (binary codec: "
        "44-byte header + 28 bytes/atom); strides and ms/step match Table "
        "II exactly. The paper's F1-ATPase frequency (92 x 8.64 ms = "
        "0.795 s) is printed as 0.82 s in the paper; we report the "
        "computed value."
    )
    parts.append("")

    for title, module, extract in _EXTRACTORS:
        fig = module.run(runs=runs, frames=frames, quick=quick)
        parts.append(f"## {title}")
        parts.append("")
        parts.append(f"Configuration: runs={fig.runs}, frames={fig.frames}.")
        parts.append("")
        parts.append(_claims_table(extract(fig)))
        parts.append("")
        parts.append("<details><summary>regenerated series</summary>")
        parts.append("")
        parts.append("```")
        parts.append(fig.render())
        parts.append("```")
        parts.append("</details>")
        parts.append("")

    # -- extensions beyond the paper's campaign ------------------------------
    from repro.experiments import validate as validate_mod

    parts.append("## Calibration self-check")
    parts.append("")
    parts.append(
        "Predicted-vs-measured primitive operations, derived from the live "
        "device constants (see docs/calibration.md):"
    )
    parts.append("")
    parts.append("```")
    parts.append(validate_mod.run().render())
    parts.append("```")
    parts.append("")

    parts.append("## Extension: ablation study (not a paper figure)")
    parts.append("")
    parts.append("```")
    parts.append(ablations_mod.run(runs=runs, frames=frames, quick=quick).render())
    parts.append("```")
    parts.append("")

    parts.append("## Extension: fan-out consumption (not a paper figure)")
    parts.append("")
    parts.append("```")
    parts.append(extension_fanout.run(runs=runs, frames=frames, quick=quick).render())
    parts.append("```")
    parts.append("")
    return "\n".join(parts)


def generate(path: str = "EXPERIMENTS.md", runs: Optional[int] = None,
             frames: Optional[int] = None, quick: bool = False) -> str:
    """Write the report to ``path``; returns the content."""
    content = build_report(runs=runs, frames=frames, quick=quick)
    with open(path, "w") as fh:
        fh.write(content + "\n")
    return content
