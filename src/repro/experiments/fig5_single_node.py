"""Fig. 5 — ensemble size scaling on a single node: DYAD vs XFS.

JAC, stride 880, 128 frames, 1/2/4 producer-consumer pairs collocated on
one node (Lustre is excluded, as in the paper, because a parallel file
system would be forced off-node).

Paper's headline numbers:
- (a) DYAD production ≈ 1.4× slower than XFS (global namespace /
  metadata management overhead); idle insignificant for both.
- (b) DYAD consumption ≈ 192.9× faster than XFS overall, because XFS's
  coarse-grained synchronization makes consumer idle ≈ the frame period
  while DYAD pays the KVS wait only on first touch.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    Cell,
    FigureResult,
    default_frames,
    default_runs,
    measure,
)
from repro.md.models import JAC
from repro.workflow.spec import Placement, System, WorkflowSpec

__all__ = ["PAIRS", "PAPER", "run", "main"]

PAIRS = (1, 2, 4)

#: The paper's reported factors, used in reports and shape assertions.
PAPER = {
    "production_ratio_dyad_over_xfs": 1.4,
    "consumption_ratio_xfs_over_dyad": 192.9,
}


def run(runs: Optional[int] = None, frames: Optional[int] = None,
        quick: bool = False) -> FigureResult:
    """Measure the Fig. 5 grid."""
    runs = default_runs(1 if quick else runs)
    frames = default_frames(32 if quick else frames)
    cells = {}
    for pairs in PAIRS:
        for system in (System.DYAD, System.XFS):
            spec = WorkflowSpec(
                system=system, model=JAC, stride=JAC.paper_stride,
                frames=frames, pairs=pairs, placement=Placement.SINGLE_NODE,
            )
            cell, _ = measure(spec, runs=runs)
            cells[(pairs, system.value)] = cell
    fig = FigureResult(
        figure_id="Fig5",
        title="single-node ensemble scaling, JAC (DYAD vs XFS)",
        x_name="pairs",
        xs=list(PAIRS),
        systems=[System.DYAD.value, System.XFS.value],
        cells=cells,
        runs=runs,
        frames=frames,
    )
    prod = fig.ratio("production_movement", "dyad", "xfs")
    cons = fig.ratio("consumption_time", "xfs", "dyad")
    fig.notes = [
        f"production movement dyad/xfs = {prod:.2f}x "
        f"(paper: {PAPER['production_ratio_dyad_over_xfs']}x slower)",
        f"overall consumption xfs/dyad = {cons:.1f}x "
        f"(paper: {PAPER['consumption_ratio_xfs_over_dyad']}x faster with DYAD)",
    ]
    return fig


def main(quick: bool = False) -> FigureResult:
    """Run and print Fig. 5."""
    fig = run(quick=quick)
    print(fig.render())
    return fig


if __name__ == "__main__":
    main()
