"""Flow-level fluid fabric: the ``fluid``/``hybrid`` fidelity tiers.

The exact tier dispatches a wake-up :class:`~repro.sim.core.Timeout` per
:class:`~repro.sim.resources.SharedBandwidth` channel per rate change, so
a contended transfer that crosses three channels (NIC egress, bisection,
NIC ingress) costs a handful of heap operations *per channel* — and a
chunked RDMA pull multiplies that by its chunk count. The fluid engine
here generalizes the same virtual-time formulation across the whole
fabric: flows that share a path, cap, and weight form a *class* with one
virtual clock, a single max-min fair rate solve covers every class on
every link, and virtual time advances analytically between flow
arrivals/departures — one wake-up for the entire network instead of one
per channel.

Fidelity tiers (selected via :class:`Fidelity`):

- ``exact``   — PR 3 kernel, bit-identical timelines, per-channel events.
- ``hybrid``  — protocol/KVS/DYAD-service events stay exact (their
  timeouts and queues are untouched); bulk byte movement through NICs,
  the bisection, SSD channels, and Lustre OSS disks is delegated to one
  :class:`FluidNetwork`. A multi-channel transfer becomes a single flow
  spanning all its links, rated jointly instead of per channel.
- ``fluid``   — ``hybrid`` plus latency folding: fixed per-transfer
  latencies (fabric setup+hops, SSD access latency) ride as a *tail* on
  the flow's completion event instead of a separate leading Timeout, and
  chunked RDMA pulls collapse into one weight-``k`` flow (``k`` equal
  chunks sharing a channel receive exactly ``k`` flow-shares, which is
  what a weight-``k`` flow receives — the per-chunk events are pure
  overhead).

Rate model. Each class ``c`` has ``n_c`` flows of weight ``w_c`` crossing
link set ``L_c``. The solver performs progressive filling (water-filling)
of the per-weight-unit rate λ: every link ``l`` constrains
``Σ_{c∋l} n_c·w_c·λ_c ≤ bandwidth_l`` and a class's per-slot rate ``λ_c``
is clamped to the smallest ``per_flow_cap`` of its links (and any
explicit flow cap) — a weight-``k`` flow behaves exactly like ``k`` unit
flows, caps included. For a single class on a single link with weight 1
this degenerates to ``min(bandwidth/n, per_flow_cap)`` — the identical
arithmetic, in the identical order, as ``SharedBandwidth`` — so
single-channel fluid timelines match the exact tier to float rounding.

Event economics: mutations (arrivals, ``set_bandwidth``, cap changes,
departures) mark the network dirty and schedule at most one zero-delay
solve *tick* per instant, so a burst of same-instant arrivals is rated
by one solve. Between mutations a single lazily-cancelled wake-up aims
at the earliest virtual finish across all classes.

Validity and tolerances are documented in ``docs/performance.md``; the
differential suite (``tests/sim/test_fluid.py``,
``tests/workflow/test_fidelity.py``) pins single-channel behaviour to
the :class:`~repro.sim.reference.ReferenceSharedBandwidth` oracle and
whole-workflow timings to the exact tier within 1e-3 relative.
"""

from __future__ import annotations

import enum
from heapq import heappop as _heappop, heappush as _heappush
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError, SimulationError
from repro.sim.core import _PENDING, Environment, Event, Timeout

__all__ = ["Fidelity", "FluidLink", "FluidNetwork"]


class Fidelity(enum.Enum):
    """Simulation fidelity tier; see the module docstring for semantics."""

    EXACT = "exact"
    HYBRID = "hybrid"
    FLUID = "fluid"

    @property
    def ordinal(self) -> int:
        """Stable numeric code (``system_stats`` stores floats only)."""
        return _ORDINALS[self]

    @property
    def uses_fluid(self) -> bool:
        """True when bulk byte movement runs on a :class:`FluidNetwork`."""
        return self is not Fidelity.EXACT

    @property
    def folds_latency(self) -> bool:
        """True when fixed latencies ride as flow tails (``fluid`` only)."""
        return self is Fidelity.FLUID

    @classmethod
    def coerce(cls, value) -> "Fidelity":
        """Accept a :class:`Fidelity` or its string name, or raise."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                pass
        names = ", ".join(f.value for f in cls)
        raise ConfigError(f"unknown fidelity {value!r}; choose from: {names}")


_ORDINALS = {Fidelity.EXACT: 0, Fidelity.HYBRID: 1, Fidelity.FLUID: 2}


class FluidLink:
    """A capacity constraint inside a :class:`FluidNetwork`.

    Duck-compatible with :class:`~repro.sim.resources.SharedBandwidth`
    where the substrates and observability layers touch channels:
    ``transfer`` / ``set_bandwidth`` / ``per_flow_cap`` / ``active_flows``
    / ``bytes_moved`` / ``current_rate`` / ``attach_metrics`` and the
    kernel-health counters read by
    :func:`repro.sim.resources.channel_health`. A link holds no flow
    state of its own beyond aggregates — flows live in the network's
    classes — so ``stale_wakeups_defused`` / ``reschedules`` stay 0 by
    construction (the network keeps one wake-up total, not one per link).
    """

    __slots__ = ("net", "env", "bandwidth", "_per_flow_cap", "_uid",
                 "label", "active_flows", "_bytes_moved",
                 "peak_concurrent_flows", "stale_wakeups_defused",
                 "reschedules", "_metrics", "_m_inflight", "_links_self")

    def __init__(self, net: "FluidNetwork", bandwidth: float,
                 per_flow_cap: Optional[float] = None,
                 label: str = "") -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if per_flow_cap is not None and per_flow_cap <= 0:
            raise ValueError(f"per_flow_cap must be positive, got {per_flow_cap}")
        self.net = net
        self.env = net.env
        self.bandwidth = float(bandwidth)
        self._per_flow_cap = per_flow_cap
        self._uid = net._next_uid()
        self.label = label
        self.active_flows = 0
        self._bytes_moved = 0.0
        self.peak_concurrent_flows = 0
        self.stale_wakeups_defused = 0
        self.reschedules = 0
        self._metrics = None
        self._m_inflight = 0.0
        self._links_self = (self,)

    # -- SharedBandwidth-compatible surface --------------------------------
    @property
    def bytes_moved(self) -> float:
        """Total bytes fully delivered through this link."""
        return self._bytes_moved

    @property
    def per_flow_cap(self) -> Optional[float]:
        """Per-flow rate cap; assignment re-rates live flows mid-stream."""
        return self._per_flow_cap

    @per_flow_cap.setter
    def per_flow_cap(self, cap: Optional[float]) -> None:
        if cap is not None and cap <= 0:
            raise ValueError(f"per_flow_cap must be positive, got {cap}")
        net = self.net
        net._advance()
        self._per_flow_cap = cap
        net._kick()

    def set_bandwidth(self, bandwidth: float) -> None:
        """Change the link capacity; live flows re-rate from this instant.

        Same contract as ``SharedBandwidth.set_bandwidth`` (the fault
        layer's degrade/restore path): virtual clocks advance at the old
        rates up to now, the next solve applies the new capacity. Safe
        with zero flows active — the solve tick simply finds no classes.
        """
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        net = self.net
        net._advance()
        self.bandwidth = float(bandwidth)
        net._kick()

    def transfer(self, nbytes: float, tail: float = 0.0) -> Event:
        """Begin moving ``nbytes`` across this single link."""
        return self.net.transfer(nbytes, self._links_self, tail=tail)

    def current_rate(self) -> float:
        """Approximate per-flow rate right now (``inf`` when idle).

        Links do not know their classes' joint constraints, so this is
        the single-link estimate — exact when this link is the only
        constraint, an upper bound otherwise. Observability only.
        """
        if not self.active_flows:
            return float("inf")
        rate = self.bandwidth / self.active_flows
        if self._per_flow_cap is not None:
            rate = min(rate, self._per_flow_cap)
        return rate

    def attach_metrics(self, timeline, label: str) -> None:
        """Meter as ``{label}.flows`` / ``.bytes_in_flight`` /
        ``.utilization`` gauges — same shape as the exact channel's.

        Pure observation: sampled after solves/completions, never fed
        back into rating.
        """
        self._metrics = (
            timeline.gauge(f"{label}.flows"),
            timeline.gauge(f"{label}.bytes_in_flight"),
            timeline.gauge(f"{label}.utilization"),
        )
        self.net._any_metered = True
        self._sample_metrics(0.0)

    def _sample_metrics(self, consumed: float) -> None:
        flows, inflight, util = self._metrics
        flows.set(float(self.active_flows))
        inflight.set(self._m_inflight)
        util.set(consumed / self.bandwidth)


class _FlowClass:
    """Flows sharing a link set, cap, and weight: one virtual clock.

    The per-class state mirrors ``SharedBandwidth`` exactly — a min-heap
    keyed by virtual finish (``V(arrival) + nbytes/weight``), a cumulative
    per-weight-unit service clock ``virtual``, and the solved service
    ``rate`` — except that the rate comes from the network-wide max-min
    solve instead of ``bandwidth/n``.
    """

    __slots__ = ("key", "links", "cap", "weight", "heap", "virtual", "rate")

    def __init__(self, key, links: Tuple[FluidLink, ...],
                 cap: Optional[float], weight: float) -> None:
        self.key = key
        self.links = links
        self.cap = cap
        self.weight = weight
        #: ``(virtual_finish, seq, nbytes, done, started, tail)`` tuples —
        #: the unique ``seq`` FIFO tie-break stops heap sifts comparing
        #: payload fields, as in the exact channel.
        self.heap: List = []
        self.virtual = 0.0
        self.rate = 0.0


class FluidNetwork:
    """Network-wide flow-level engine behind the non-exact tiers.

    Owns every :class:`FluidLink` it creates via :meth:`link` and every
    in-flight flow. Admission (:meth:`transfer`) groups flows into
    :class:`_FlowClass` buckets; all rating happens in :meth:`_solve`
    (progressive filling) and all time-keeping in :meth:`_advance`
    (analytic virtual-clock epochs). ``fluid_epochs`` / ``rate_solves``
    are the kernel-health counters surfaced through ``system_stats``
    alongside the exact tier's ``channel_*`` numbers.
    """

    #: Same completion residue (in bytes of per-weight-unit service) as
    #: ``SharedBandwidth._RESIDUE`` — and for the same reason: a wake-up
    #: lands at the *projected* finish instant, so float rounding leaves
    #: nanobyte remainders that must count as done or the network spins.
    _RESIDUE = 1e-6

    __slots__ = ("env", "_classes", "_seq", "_uid_counter", "_last_update",
                 "_dirty", "_tick", "_tick_cb", "_wake", "_wake_cb",
                 "_any_metered", "fluid_epochs", "rate_solves",
                 "flows_admitted", "flows_completed")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._classes: Dict[tuple, _FlowClass] = {}
        self._seq = 0
        self._uid_counter = 0
        self._last_update = env.now
        self._dirty = False
        self._tick = None  # the pending zero-delay solve tick, if any
        self._tick_cb = self._on_tick  # bound once
        self._wake = None  # the single live wake-up Timeout, if any
        self._wake_cb = self._on_wake  # bound once
        self._any_metered = False
        # kernel-health counters (surfaced via system_stats)
        self.fluid_epochs = 0
        self.rate_solves = 0
        self.flows_admitted = 0
        self.flows_completed = 0

    def _next_uid(self) -> int:
        uid = self._uid_counter
        self._uid_counter = uid + 1
        return uid

    def link(self, bandwidth: float, per_flow_cap: Optional[float] = None,
             label: str = "") -> FluidLink:
        """Create a capacity constraint managed by this network."""
        return FluidLink(self, bandwidth, per_flow_cap, label)

    @property
    def active_flows(self) -> int:
        """Number of in-flight flows across all classes."""
        return sum(len(c.heap) for c in self._classes.values())

    # -- admission ----------------------------------------------------------
    def transfer(self, nbytes: float, links, cap: Optional[float] = None,
                 tail: float = 0.0, weight: float = 1.0,
                 _new=Event.__new__, _cls=Event,
                 _push=_heappush) -> Event:
        """Begin moving ``nbytes`` across ``links`` jointly; returns the
        completion event (value: elapsed time, including ``tail``).

        ``links`` is the ordered set of :class:`FluidLink` constraints the
        flow must traverse simultaneously (NIC egress + bisection + NIC
        ingress, say). ``cap`` optionally bounds the flow's per-slot rate
        on top of the links' ``per_flow_cap``. ``tail`` delays only the
        completion event — the folded-latency mechanism of the ``fluid``
        tier — and does not extend link occupancy. ``weight`` makes the
        flow count as ``weight`` flow-slots in max-min sharing and move
        bytes at ``weight`` times the per-slot rate; caps bound each slot
        (a weight-``k`` flow may reach ``k·cap`` aggregate, exactly like
        ``k`` unit flows each capped at ``cap``), so ``k`` equal chunks
        collapse into one weight-``k`` flow with the same completion time
        and the same contention footprint.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        env = self.env
        done = _new(_cls)
        done.env = env
        done.callbacks = []
        done._value = _PENDING
        done._ok = None
        done._defused = False
        now = env._now
        if nbytes == 0:
            # Metadata-only op: completes after the tail alone (instantly
            # when no latency was folded in), without occupying links.
            done._ok = True
            done._value = tail
            eseq = env._seq
            env._seq = eseq + 1
            _push(env._heap, (now + tail, 1, eseq, done))  # 1 == NORMAL
            return done
        self._advance()
        key = (tuple(link._uid for link in links), cap, weight)
        cls = self._classes.get(key)
        if cls is None:
            cls = _FlowClass(key, tuple(links), cap, weight)
            self._classes[key] = cls
        seq = self._seq
        self._seq = seq + 1
        _push(cls.heap, (cls.virtual + nbytes / weight, seq, nbytes,
                         done, now, tail))
        metered = self._any_metered
        for link in cls.links:
            n = link.active_flows = link.active_flows + 1
            if n > link.peak_concurrent_flows:
                link.peak_concurrent_flows = n
            if metered and link._metrics is not None:
                link._m_inflight += nbytes
        self.flows_admitted += 1
        self._kick()
        return done

    # -- mutation plumbing ---------------------------------------------------
    def _kick(self, _tnew=Timeout.__new__, _tcls=Timeout,
              _push=_heappush) -> None:
        """Mark rates stale; ensure one zero-delay solve tick this instant.

        Every mutation funnels through here, so a same-instant burst of
        arrivals/departures/``set_bandwidth`` calls is rated by a single
        :meth:`_solve` when the tick dispatches.
        """
        self._dirty = True
        tick = self._tick
        if tick is not None and tick.callbacks is not None:
            return  # a solve is already pending at this instant
        env = self.env
        tick = _tnew(_tcls)  # keep in sync with Environment.timeout
        tick.env = env
        tick.callbacks = [self._tick_cb]
        tick._ok = True
        tick._value = None
        tick._defused = False
        tick.delay = 0.0
        tseq = env._seq
        env._seq = tseq + 1
        _push(env._heap, (env._now, 1, tseq, tick))  # 1 == NORMAL
        self._tick = tick

    def _on_tick(self, _event: Event) -> None:
        """Zero-delay solve tick: re-rate if anything actually changed."""
        self._tick = None
        self._advance()
        if self._dirty:
            self._solve()
            self._aim()

    def _on_wake(self, _event: Event) -> None:
        """Projected-finish wake-up: advance, complete, re-solve, re-aim."""
        self._wake = None
        self._advance()
        if self._dirty:
            self._solve()
        self._aim()

    # -- time-keeping --------------------------------------------------------
    def _advance(self, _pop=_heappop, _push=_heappush) -> None:
        """Advance every class's virtual clock analytically; pop finishers.

        One *epoch* covers the whole interval since the last update — no
        intermediate events were needed because rates are constant between
        mutations. Departures mark the network dirty (they free capacity)
        and empty classes are dropped, re-anchoring their virtual clocks
        at zero exactly like the exact channel's idle re-anchor.
        """
        env = self.env
        now = env._now
        classes = self._classes
        if not classes:
            self._last_update = now
            return
        elapsed = now - self._last_update
        if elapsed <= 0.0:
            # Same-instant re-entry (admission bursts funnel through here
            # once per arrival): virtual clocks have not moved, so no flow
            # can have matured since the last scan — skipping it makes a
            # 10k-flow burst O(n) instead of O(n * classes). Sub-residue
            # flows admitted mid-instant mature via the min-step wake-up.
            return
        self._last_update = now
        self.fluid_epochs += 1
        for c in classes.values():
            c.virtual += c.rate * elapsed
        residue = self._RESIDUE
        metered = self._any_metered
        emptied = None
        env_heap = env._heap
        for c in classes.values():
            heap = c.heap
            virtual = c.virtual
            if heap[0][0] - virtual > residue:
                continue
            links = c.links
            while heap and heap[0][0] - virtual <= residue:
                _key, _fseq, fbytes, fin, started, tail = _pop(heap)
                if fin._value is not _PENDING:  # as Event.succeed would
                    raise SimulationError(f"{fin!r} already triggered")
                fin._ok = True
                fin._value = now + tail - started
                eseq = env._seq
                env._seq = eseq + 1
                _push(env_heap, (now + tail, 1, eseq, fin))  # 1 == NORMAL
                for link in links:
                    link.active_flows -= 1
                    link._bytes_moved += fbytes
                    if metered and link._metrics is not None:
                        link._m_inflight -= fbytes
                self.flows_completed += 1
            self._dirty = True
            if not heap:
                if emptied is None:
                    emptied = []
                emptied.append(c.key)
        if emptied is not None:
            for key in emptied:
                del classes[key]

    # -- rating --------------------------------------------------------------
    def _solve(self) -> None:
        """Max-min fair rates via progressive filling over all classes.

        Per-weight-unit rate λ_c: each unfrozen class is raised uniformly
        until either a link saturates (every class crossing it freezes at
        the bottleneck share) or its own cap binds. The single-class path
        is special-cased to reproduce ``SharedBandwidth``'s arithmetic —
        ``bandwidth / load`` then cap clamp, in that order — which keeps
        single-channel fluid timelines bit-comparable with the exact tier.
        """
        self.rate_solves += 1
        self._dirty = False
        classes = self._classes
        if not classes:
            return
        if len(classes) == 1:
            (c,) = classes.values()
            links = c.links
            load = len(c.heap) * c.weight
            rate = links[0].bandwidth / load
            cap = c.cap
            for link in links:
                r = link.bandwidth / load
                if r < rate:
                    rate = r
                lc = link._per_flow_cap
                if lc is not None and (cap is None or lc < cap):
                    cap = lc
            if cap is not None and cap < rate:
                rate = cap
            c.rate = rate
            if self._any_metered:
                self._sample_metered()
            return
        remaining: Dict[FluidLink, float] = {}
        load: Dict[FluidLink, float] = {}
        entries = []  # [class, weight_total, per-weight-unit cap]
        for c in classes.values():
            wtot = len(c.heap) * c.weight
            cap = c.cap
            for link in c.links:
                lc = link._per_flow_cap
                if lc is not None and (cap is None or lc < cap):
                    cap = lc
                if link in remaining:
                    load[link] += wtot
                else:
                    remaining[link] = link.bandwidth
                    load[link] = wtot
            entries.append((c, wtot, cap))
        unfrozen = entries
        while unfrozen:
            lam = None
            for link, w in load.items():
                if w > 1e-12:
                    share = remaining[link] / w
                    if lam is None or share < lam:
                        lam = share
            for _c, _w, cap_eff in unfrozen:
                if cap_eff is not None and (lam is None or cap_eff < lam):
                    lam = cap_eff
            if lam is None or lam < 0.0:
                lam = 0.0
            # Relative threshold: freeze anything within rounding of the
            # binding constraint, or float drift never empties the set.
            thresh = lam + lam * 1e-12
            still = []
            for entry in unfrozen:
                c, wtot, cap_eff = entry
                if cap_eff is not None and cap_eff <= thresh:
                    rate = cap_eff
                else:
                    for link in c.links:
                        w = load[link]
                        if w > 1e-12 and remaining[link] / w <= thresh:
                            rate = lam
                            break
                    else:
                        still.append(entry)
                        continue
                c.rate = rate
                take = rate * wtot
                for link in c.links:
                    rem = remaining[link] - take
                    remaining[link] = rem if rem > 0.0 else 0.0
                    load[link] -= wtot
            if len(still) == len(unfrozen):
                # No constraint froze anything (degenerate rounding):
                # everything left is effectively at the waterline.
                for c, wtot, cap_eff in still:
                    rate = lam if cap_eff is None or lam < cap_eff else cap_eff
                    c.rate = rate
                    take = rate * wtot
                    for link in c.links:
                        rem = remaining[link] - take
                        remaining[link] = rem if rem > 0.0 else 0.0
                        load[link] -= wtot
                break
            unfrozen = still
        if self._any_metered:
            self._sample_metered()

    def _sample_metered(self) -> None:
        """Push per-link consumed-bandwidth gauges (observability only)."""
        consumed: Dict[FluidLink, float] = {}
        for c in self._classes.values():
            take = c.rate * len(c.heap) * c.weight
            for link in c.links:
                consumed[link] = consumed.get(link, 0.0) + take
        seen = set()
        for c in self._classes.values():
            for link in c.links:
                if link._metrics is not None and link._uid not in seen:
                    seen.add(link._uid)
                    link._sample_metrics(consumed.get(link, 0.0))

    # -- aiming --------------------------------------------------------------
    def _aim(self, _tnew=Timeout.__new__, _tcls=Timeout,
             _push=_heappush) -> None:
        """Re-aim the single wake-up at the earliest projected finish."""
        wake = self._wake
        if wake is not None:
            self._wake = None
            if wake.callbacks is not None:  # inlined Event.cancel()
                wake.callbacks = None
        classes = self._classes
        if not classes:
            return
        eta = None
        for c in classes.values():
            rate = c.rate
            if rate <= 0.0:
                continue  # starved class: re-rated at the next mutation
            t = (c.heap[0][0] - c.virtual) / rate
            if eta is None or t < eta:
                eta = t
        if eta is None:
            return
        env = self.env
        now = env._now
        # A wake-up must land strictly after `now` in float arithmetic —
        # same clamp, same branchy spelling as the exact channel.
        if now > 1.0:
            min_step = now * 1e-12
        elif now < -1.0:
            min_step = -now * 1e-12
        else:
            min_step = 1e-12
        if eta < min_step:
            eta = min_step
        wake = _tnew(_tcls)  # keep in sync with Environment.timeout
        wake.env = env
        wake.callbacks = [self._wake_cb]
        wake._ok = True
        wake._value = None
        wake._defused = False
        wake.delay = eta
        wseq = env._seq
        env._seq = wseq + 1
        _push(env._heap, (now + eta, 1, wseq, wake))  # 1 == NORMAL
        self._wake = wake
