"""Shared-resource primitives for the DES kernel.

Four primitives cover every contention point in the simulated cluster:

- :class:`Resource` — a FIFO server with integer capacity. Used for RPC
  service queues (Lustre MDS/OSS, the KVS server) and mutual exclusion
  (file locks use capacity 1).
- :class:`Store` — unbounded FIFO queue of items. Used for message passing
  between DYAD clients and services.
- :class:`SharedBandwidth` — a fluid-flow *processor sharing* channel:
  total bandwidth is divided equally among concurrent transfers. Flows are
  scheduled in O(log n) via a virtual service clock (see the class
  docstring and ``docs/performance.md``). Used for SSD channels, fabric
  links, and aggregate OSS bandwidth; this is the mechanism behind the
  contention effects in Figs. 7, 8, and 12.
- :class:`Signal` — a broadcast condition that wakes *all* current waiters.
  Used for KVS watches (DYAD's loosely-coupled first-touch sync).

The O(n²) reference implementation :class:`SharedBandwidth` replaced lives
on as :class:`repro.sim.reference.ReferenceSharedBandwidth`, the oracle of
the differential tests in ``tests/sim/test_channel_differential.py``.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Deque, Dict, List, Optional

from repro.errors import SimulationError
from repro.sim.core import _PENDING, Environment, Event, Process, Timeout

__all__ = ["Resource", "Store", "SharedBandwidth", "Signal", "channel_health"]


def channel_health(channels) -> dict:
    """Aggregate kernel-health counters over an iterable of channels.

    Returns ``stale_wakeups_defused`` and ``reschedules`` summed across
    the channels and ``peak_concurrent_flows`` as the maximum seen on any
    single channel — the numbers :mod:`repro.workflow.runner` surfaces as
    ``channel_*`` entries in ``system_stats`` so a kernel-bench regression
    (e.g. a re-schedule storm after a fault) is diagnosable straight from
    experiment output.
    """
    stale = reschedules = peak = 0
    for chan in channels:
        stale += chan.stale_wakeups_defused
        reschedules += chan.reschedules
        if chan.peak_concurrent_flows > peak:
            peak = chan.peak_concurrent_flows
    return {
        "stale_wakeups_defused": stale,
        "peak_concurrent_flows": peak,
        "reschedules": reschedules,
    }


class Request(Event):
    """Pending grant of one capacity unit of a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """FIFO server with ``capacity`` simultaneous users.

    Usage from inside a process generator::

        req = server.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            server.release(req)

    The :meth:`acquire` helper wraps request+service+release for the common
    "queued fixed-cost operation" pattern.
    """

    __slots__ = ("env", "capacity", "_users", "_queue", "_metrics")

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: List[Request] = []
        self._queue: Deque[Request] = deque()
        self._metrics = None  # (in_service, queued) gauges when attached

    def attach_metrics(self, timeline, label: str) -> None:
        """Meter occupancy as ``{label}.in_service`` / ``{label}.queued``.

        Pure observation: gauges are sampled after state changes and never
        affect scheduling.
        """
        self._metrics = (
            timeline.gauge(f"{label}.in_service"),
            timeline.gauge(f"{label}.queued"),
        )
        self._sample_metrics()

    def _sample_metrics(self) -> None:
        in_service, queued = self._metrics
        in_service.set(float(len(self._users)))
        queued.set(float(len(self._queue)))

    @property
    def count(self) -> int:
        """Number of current users."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        """Number of waiting requests."""
        return len(self._queue)

    def request(self) -> Request:
        """Ask for one capacity unit; the returned event fires when granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed()
        else:
            self._queue.append(req)
        if self._metrics is not None:
            self._sample_metrics()
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted unit and wake the next waiter."""
        try:
            self._users.remove(request)
        except ValueError:
            # Request may still be queued (released before grant = cancel).
            try:
                self._queue.remove(request)
                if self._metrics is not None:
                    self._sample_metrics()
                return
            except ValueError:
                raise SimulationError("release of a non-held request") from None
        while self._queue and len(self._users) < self.capacity:
            nxt = self._queue.popleft()
            self._users.append(nxt)
            nxt.succeed()
        if self._metrics is not None:
            self._sample_metrics()

    def acquire(self, service_time: float):
        """Generator: queue for the server, hold it ``service_time``, release.

        Yields the queueing delay *plus* the service time; returns the time
        spent waiting in the queue (used by instrumentation to separate
        contention from service).
        """
        start = self.env.now
        req = self.request()
        yield req
        waited = self.env.now - start
        try:
            yield self.env.timeout(service_time)
        finally:
            self.release(req)
        return waited


class Store:
    """Unbounded FIFO queue of items with blocking ``get``."""

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (immediately if available)."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class Signal:
    """Broadcast condition: ``wait()`` events all fire on ``fire(value)``.

    Unlike :class:`Store`, every waiter observes the value. A Signal can
    fire many times; waiters registered after a firing wait for the next
    one. :meth:`fire_once` latches: late waiters complete immediately —
    that latching is what a KVS watch on an already-committed key needs.
    """

    __slots__ = ("env", "_waiters", "_latched", "_latched_value")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._waiters: List[Event] = []
        self._latched = False
        self._latched_value: Any = None

    @property
    def latched(self) -> bool:
        """True once :meth:`fire_once` has been called."""
        return self._latched

    def wait(self) -> Event:
        """Event firing at the next :meth:`fire` (or now, if latched)."""
        event = Event(self.env)
        if self._latched:
            event.succeed(self._latched_value)
        else:
            self._waiters.append(event)
        return event

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed(value)
        return len(waiters)

    def fire_once(self, value: Any = None) -> int:
        """Wake all waiters and latch so future waits complete immediately."""
        if self._latched:
            raise SimulationError("Signal already latched")
        self._latched = True
        self._latched_value = value
        return self.fire(value)


class SharedBandwidth:
    """Fluid-flow processor-sharing channel of ``bandwidth`` bytes/second.

    Each concurrent transfer receives an equal share of the total bandwidth
    (capped at ``per_flow_cap`` if given). This reproduces the first-order
    behaviour of a shared NIC, SSD channel, or storage server under
    concurrent load, and is the source of the emergent contention effects
    in the multi-pair experiments.

    Scheduling uses the classic *virtual time* formulation of egalitarian
    processor sharing. Let ``S(t)`` be the cumulative service each active
    flow has received (bytes); ``S`` grows at ``min(bandwidth/n(t),
    per_flow_cap)`` while ``n(t)`` flows are active. A flow arriving with
    ``nbytes`` completes exactly when ``S`` reaches ``S(arrival) +
    nbytes`` — a *constant* — so flows live in a min-heap keyed by that
    virtual finish value and never need re-timing: arrivals, completions
    and mid-stream ``set_bandwidth`` calls only change the *rate* at which
    the one scalar ``S`` advances (they segment the virtual clock), an
    O(log n) heap operation each. The O(n²) alternative — re-scanning and
    re-timing every flow on every change — is retained verbatim as
    :class:`repro.sim.reference.ReferenceSharedBandwidth` and drives the
    differential tests; ``docs/performance.md`` derives the equivalence.

    One wake-up :class:`~repro.sim.core.Timeout` per channel is live at a
    time: each re-schedule lazily cancels the previous one
    (:meth:`Event.cancel <repro.sim.core.Event.cancel>`), so stale
    wake-ups cost a heap pop instead of a callback dispatch. The
    ``stale_wakeups_defused`` / ``peak_concurrent_flows`` /
    ``reschedules`` counters feed the ``channel_*`` kernel-health keys of
    ``WorkflowResult.system_stats``.
    """

    __slots__ = ("env", "bandwidth", "_per_flow_cap", "_heap", "_seq",
                 "_virtual", "_last_update", "_wake", "_wake_cb",
                 "_bytes_moved", "stale_wakeups_defused",
                 "peak_concurrent_flows", "reschedules",
                 "_metrics", "_m_inflight")

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        per_flow_cap: Optional[float] = None,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if per_flow_cap is not None and per_flow_cap <= 0:
            raise ValueError(f"per_flow_cap must be positive, got {per_flow_cap}")
        self.env = env
        self.bandwidth = float(bandwidth)
        self._per_flow_cap = per_flow_cap
        #: active flows as ``(virtual_finish, seq, nbytes, done, started)``
        #: heap entries — plain tuples so heap sifts compare in C, and the
        #: unique ``seq`` (FIFO tie-break) stops comparison ever reaching
        #: the payload fields.
        self._heap: List = []
        self._seq = 0
        self._virtual = 0.0  # S(t): cumulative per-flow service, in bytes
        self._last_update = env.now
        self._wake = None  # the single live wake-up Timeout, if any
        self._wake_cb = self._on_wake  # bound once; appended per wake-up
        self._bytes_moved = 0.0  # lifetime accounting, for tests/metrics
        # kernel-health counters (surfaced via system_stats)
        self.stale_wakeups_defused = 0
        self.peak_concurrent_flows = 0
        self.reschedules = 0
        # telemetry (None until attach_metrics; hot paths check one slot)
        self._metrics = None
        self._m_inflight = 0.0

    def attach_metrics(self, timeline, label: str) -> None:
        """Meter the channel as ``{label}.flows`` / ``.bytes_in_flight`` /
        ``.utilization`` gauges on ``timeline``.

        Pure observation: gauges are sampled after the channel state has
        already changed and never feed back into scheduling, so attached
        and unattached runs advance identically.
        """
        self._metrics = (
            timeline.gauge(f"{label}.flows"),
            timeline.gauge(f"{label}.bytes_in_flight"),
            timeline.gauge(f"{label}.utilization"),
        )
        self._m_inflight = float(sum(entry[2] for entry in self._heap))
        self._sample_metrics()

    def _sample_metrics(self) -> None:
        flows, inflight, util = self._metrics
        n = len(self._heap)
        flows.set(float(n))
        inflight.set(self._m_inflight)
        if n == 0:
            util.set(0.0)
        else:
            rate = self.bandwidth / n
            cap = self._per_flow_cap
            if cap is not None and cap < rate:
                rate = cap
            util.set(rate * n / self.bandwidth)

    # -- public ------------------------------------------------------------
    @property
    def per_flow_cap(self) -> Optional[float]:
        """Per-flow rate ceiling in bytes/second (``None`` = uncapped).

        Assignment segments the virtual clock exactly like
        :meth:`set_bandwidth`: the elapsed interval is priced at the *old*
        cap before the new one takes effect, so a mid-epoch change governs
        only the future — never retroactively re-prices service already
        rendered. (Historically this was a plain attribute and mid-epoch
        assignment rewrote the elapsed epoch; the fluid tier's
        ``FluidLink.per_flow_cap`` setter had the segmenting behaviour
        first.)
        """
        return self._per_flow_cap

    @per_flow_cap.setter
    def per_flow_cap(self, cap: Optional[float]) -> None:
        if cap is not None and cap <= 0:
            raise ValueError(f"per_flow_cap must be positive, got {cap}")
        self._advance()
        self._per_flow_cap = cap
        self._reschedule()
        if self._metrics is not None:
            self._sample_metrics()

    @property
    def active_flows(self) -> int:
        """Number of in-flight transfers."""
        return len(self._heap)

    @property
    def bytes_moved(self) -> float:
        """Total bytes fully delivered over the lifetime of the channel."""
        return self._bytes_moved

    def current_rate(self) -> float:
        """Per-flow rate right now (``inf`` when idle)."""
        if not self._heap:
            return float("inf")
        rate = self.bandwidth / len(self._heap)
        if self._per_flow_cap is not None:
            rate = min(rate, self._per_flow_cap)
        return rate

    def set_bandwidth(self, bandwidth: float) -> None:
        """Change the channel's total bandwidth, rescheduling live flows.

        Used by the fault layer to model device/server degradation without
        tearing down in-flight transfers: the virtual clock advances at the
        old rate up to now, then ticks at the new rate — in-flight flows
        keep their virtual finish keys and slow down (or speed back up)
        mid-stream. Restoring the original value reverses the slowdown the
        same way.
        """
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self._advance()
        self.bandwidth = float(bandwidth)
        self._reschedule()
        if self._metrics is not None:
            self._sample_metrics()

    def transfer(self, nbytes: float, _new=Event.__new__, _cls=Event,
                 _tnew=Timeout.__new__, _tcls=Timeout,
                 _push=_heappush, _pop=_heappop) -> Event:
        """Begin moving ``nbytes``; the returned event fires at completion.

        This is the per-transfer hot path of every modelled NIC/SSD/OSS
        data channel, so — in the same style as
        :meth:`Environment.timeout` — the completion event and the wake-up
        are built without running ``__init__`` chains, and the
        advance/re-aim machinery of :meth:`_advance`/:meth:`_reschedule`
        is inlined (identical arithmetic, in the identical order; keep
        them in sync). The trailing defaults pre-bind globals as locals —
        never pass them.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        env = self.env
        done = _new(_cls)
        done.env = env
        done.callbacks = []
        done._value = _PENDING
        done._ok = None
        done._defused = False
        if nbytes == 0:
            done.succeed(0.0)
            return done
        now = env._now
        heap = self._heap
        m = self._metrics
        # -- inlined _advance() -------------------------------------------
        if heap:
            elapsed = now - self._last_update
            self._last_update = now
            if elapsed > 0.0:
                rate = self.bandwidth / len(heap)
                cap = self._per_flow_cap
                if cap is not None and cap < rate:
                    rate = cap
                self._virtual += rate * elapsed
            virtual = self._virtual
            residue = self._RESIDUE
            env_heap = env._heap
            while heap and heap[0][0] - virtual <= residue:
                _key, _fseq, fbytes, fin, started = _pop(heap)
                self._bytes_moved += fbytes
                if m is not None:
                    self._m_inflight -= fbytes
                if fin._value is not _PENDING:  # as Event.succeed would
                    raise SimulationError(f"{fin!r} already triggered")
                fin._ok = True
                fin._value = now - started
                eseq = env._seq
                env._seq = eseq + 1
                _push(env_heap, (now, 1, eseq, fin))  # 1 == NORMAL
            if not heap:
                self._virtual = 0.0
        else:
            self._last_update = now
        # -- admit the new flow -------------------------------------------
        seq = self._seq
        self._seq = seq + 1
        _push(heap, (self._virtual + nbytes, seq, nbytes, done, now))
        n = len(heap)
        if n > self.peak_concurrent_flows:
            self.peak_concurrent_flows = n
        if m is not None:
            self._m_inflight += nbytes
            self._sample_metrics()
        # -- inlined _reschedule() ----------------------------------------
        wake = self._wake
        if wake is not None and wake.callbacks is not None:
            wake.callbacks = None  # lazy-cancel the stale wake-up
            self.stale_wakeups_defused += 1
        self.reschedules += 1
        rate = self.bandwidth / n
        cap = self._per_flow_cap
        if cap is not None and cap < rate:
            rate = cap
        eta = (heap[0][0] - self._virtual) / rate
        # Branchy spelling of max(abs(now), 1.0) * 1e-12 — same product,
        # same rounding, no builtin calls on the hot path.
        if now > 1.0:
            min_step = now * 1e-12
        elif now < -1.0:
            min_step = -now * 1e-12
        else:
            min_step = 1e-12
        if eta < min_step:
            eta = min_step
        wake = _tnew(_tcls)  # keep in sync with Environment.timeout
        wake.env = env
        wake.callbacks = [self._wake_cb]
        wake._ok = True
        wake._value = None
        wake._defused = False
        wake.delay = eta
        wseq = env._seq
        env._seq = wseq + 1
        _push(env._heap, (now + eta, 1, wseq, wake))  # 1 == NORMAL
        self._wake = wake
        return done

    # -- machinery ----------------------------------------------------------
    # Flows whose virtual residue drops below this many bytes are complete.
    # The residue comes from float rounding when a wake-up fires at the
    # projected completion instant; without a tolerance the channel can
    # spin on nanobyte remainders with zero-delay wake-ups.
    _RESIDUE = 1e-6

    def _advance(self, _pop=_heappop) -> None:
        """Tick the virtual clock over the elapsed interval, pop finishers."""
        now = self.env._now
        heap = self._heap
        if not heap:
            self._last_update = now
            return
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed > 0.0:
            rate = self.bandwidth / len(heap)
            cap = self._per_flow_cap
            if cap is not None and cap < rate:
                rate = cap
            self._virtual += rate * elapsed
        # NB: the `key - virtual <= residue` form (subtract, then compare)
        # is deliberate — it rounds exactly like the reference oracle's
        # materialized `remaining <= residue`, which is what keeps solo and
        # lockstep timelines bit-identical across the rewrite.
        virtual = self._virtual
        residue = self._RESIDUE
        while heap and heap[0][0] - virtual <= residue:
            entry = _pop(heap)
            self._bytes_moved += entry[2]
            if self._metrics is not None:
                self._m_inflight -= entry[2]
            entry[3].succeed(now - entry[4])
        if not heap:
            # Idle channel: re-anchor the virtual clock at zero. Arrivals
            # into an idle channel then carry exact finish keys (S + B with
            # S == 0.0 is exact), which keeps solo transfers free of
            # accumulated rounding no matter how long the run is.
            self._virtual = 0.0

    def _reschedule(self) -> None:
        """Re-aim the single wake-up at the earliest virtual finish."""
        wake = self._wake
        if wake is not None:
            self._wake = None
            if wake.callbacks is not None:  # inlined Event.cancel()
                wake.callbacks = None
                self.stale_wakeups_defused += 1
        heap = self._heap
        if not heap:
            return
        self.reschedules += 1
        rate = self.bandwidth / len(heap)
        cap = self._per_flow_cap
        if cap is not None and cap < rate:
            rate = cap
        eta = (heap[0][0] - self._virtual) / rate
        # A wake-up must land strictly after `now` in float arithmetic, or
        # `_advance` sees zero elapsed time and the channel spins forever on
        # a sub-ULP residue. The clamp is ~1e-12 relative — far below any
        # modelled device time.
        min_step = max(abs(self.env._now), 1.0) * 1e-12
        if eta < min_step:
            eta = min_step
        wake = self.env.timeout(eta)
        wake.callbacks.append(self._wake_cb)
        self._wake = wake

    def _on_wake(self, _event: Event, _pop=_heappop, _push=_heappush,
                 _tnew=Timeout.__new__, _tcls=Timeout) -> None:
        """Fired by the wake-up Timeout: advance, complete, re-aim.

        Fully inlined twin of :meth:`_advance` + :meth:`_reschedule` (keep
        them in sync) — this and :meth:`transfer` are the only two frames
        on the contended hot path, so completion events are triggered and
        the next wake-up is built without the ``succeed``/``timeout`` call
        chain, exactly as :meth:`Environment.timeout` would.
        """
        self._wake = None
        env = self.env
        now = env._now
        heap = self._heap
        if not heap:
            self._last_update = now
            return
        m = self._metrics
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed > 0.0:
            rate = self.bandwidth / len(heap)
            cap = self._per_flow_cap
            if cap is not None and cap < rate:
                rate = cap
            self._virtual += rate * elapsed
        virtual = self._virtual
        residue = self._RESIDUE
        env_heap = env._heap
        while heap and heap[0][0] - virtual <= residue:
            _key, _fseq, fbytes, fin, started = _pop(heap)
            self._bytes_moved += fbytes
            if m is not None:
                self._m_inflight -= fbytes
            if fin._value is not _PENDING:  # as Event.succeed would raise
                raise SimulationError(f"{fin!r} already triggered")
            fin._ok = True
            fin._value = now - started
            eseq = env._seq
            env._seq = eseq + 1
            _push(env_heap, (now, 1, eseq, fin))  # 1 == NORMAL
        n = len(heap)
        if n == 0:
            self._virtual = 0.0  # idle: re-anchor (see _advance)
            if m is not None:
                self._sample_metrics()
            return
        self.reschedules += 1
        rate = self.bandwidth / n
        cap = self._per_flow_cap
        if cap is not None and cap < rate:
            rate = cap
        eta = (heap[0][0] - virtual) / rate
        if now > 1.0:  # max(abs(now), 1.0) * 1e-12, spelled branchy
            min_step = now * 1e-12
        elif now < -1.0:
            min_step = -now * 1e-12
        else:
            min_step = 1e-12
        if eta < min_step:
            eta = min_step
        wake = _tnew(_tcls)  # keep in sync with Environment.timeout
        wake.env = env
        wake.callbacks = [self._wake_cb]
        wake._ok = True
        wake._value = None
        wake._defused = False
        wake.delay = eta
        wseq = env._seq
        env._seq = wseq + 1
        _push(env_heap, (now + eta, 1, wseq, wake))
        self._wake = wake
        if m is not None:
            self._sample_metrics()
