"""Shared-resource primitives for the DES kernel.

Four primitives cover every contention point in the simulated cluster:

- :class:`Resource` — a FIFO server with integer capacity. Used for RPC
  service queues (Lustre MDS/OSS, the KVS server) and mutual exclusion
  (file locks use capacity 1).
- :class:`Store` — unbounded FIFO queue of items. Used for message passing
  between DYAD clients and services.
- :class:`SharedBandwidth` — a fluid-flow *processor sharing* channel:
  total bandwidth is divided equally among concurrent transfers, and
  completion times are recomputed whenever a flow starts or ends. Used for
  SSD channels, fabric links, and aggregate OSS bandwidth; this is the
  mechanism behind the contention effects in Figs. 7, 8, and 12.
- :class:`Signal` — a broadcast condition that wakes *all* current waiters.
  Used for KVS watches (DYAD's loosely-coupled first-touch sync).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.errors import SimulationError
from repro.sim.core import Environment, Event, Process

__all__ = ["Resource", "Store", "SharedBandwidth", "Signal"]


class Request(Event):
    """Pending grant of one capacity unit of a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """FIFO server with ``capacity`` simultaneous users.

    Usage from inside a process generator::

        req = server.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            server.release(req)

    The :meth:`acquire` helper wraps request+service+release for the common
    "queued fixed-cost operation" pattern.
    """

    __slots__ = ("env", "capacity", "_users", "_queue")

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: List[Request] = []
        self._queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of current users."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        """Number of waiting requests."""
        return len(self._queue)

    def request(self) -> Request:
        """Ask for one capacity unit; the returned event fires when granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed()
        else:
            self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted unit and wake the next waiter."""
        try:
            self._users.remove(request)
        except ValueError:
            # Request may still be queued (released before grant = cancel).
            try:
                self._queue.remove(request)
                return
            except ValueError:
                raise SimulationError("release of a non-held request") from None
        while self._queue and len(self._users) < self.capacity:
            nxt = self._queue.popleft()
            self._users.append(nxt)
            nxt.succeed()

    def acquire(self, service_time: float):
        """Generator: queue for the server, hold it ``service_time``, release.

        Yields the queueing delay *plus* the service time; returns the time
        spent waiting in the queue (used by instrumentation to separate
        contention from service).
        """
        start = self.env.now
        req = self.request()
        yield req
        waited = self.env.now - start
        try:
            yield self.env.timeout(service_time)
        finally:
            self.release(req)
        return waited


class Store:
    """Unbounded FIFO queue of items with blocking ``get``."""

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (immediately if available)."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class Signal:
    """Broadcast condition: ``wait()`` events all fire on ``fire(value)``.

    Unlike :class:`Store`, every waiter observes the value. A Signal can
    fire many times; waiters registered after a firing wait for the next
    one. :meth:`fire_once` latches: late waiters complete immediately —
    that latching is what a KVS watch on an already-committed key needs.
    """

    __slots__ = ("env", "_waiters", "_latched", "_latched_value")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._waiters: List[Event] = []
        self._latched = False
        self._latched_value: Any = None

    @property
    def latched(self) -> bool:
        """True once :meth:`fire_once` has been called."""
        return self._latched

    def wait(self) -> Event:
        """Event firing at the next :meth:`fire` (or now, if latched)."""
        event = Event(self.env)
        if self._latched:
            event.succeed(self._latched_value)
        else:
            self._waiters.append(event)
        return event

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed(value)
        return len(waiters)

    def fire_once(self, value: Any = None) -> int:
        """Wake all waiters and latch so future waits complete immediately."""
        if self._latched:
            raise SimulationError("Signal already latched")
        self._latched = True
        self._latched_value = value
        return self.fire(value)


class _Flow:
    """Internal: one active transfer on a :class:`SharedBandwidth`."""

    __slots__ = ("total", "remaining", "done", "started")

    def __init__(self, nbytes: float, done: Event, started: float) -> None:
        self.total = float(nbytes)
        self.remaining = float(nbytes)
        self.done = done
        self.started = started


class SharedBandwidth:
    """Fluid-flow processor-sharing channel of ``bandwidth`` bytes/second.

    Each concurrent transfer receives an equal share of the total bandwidth
    (capped at ``per_flow_cap`` if given). Whenever the set of active flows
    changes, remaining byte counts are advanced and the next completion is
    rescheduled. This reproduces the first-order behaviour of a shared NIC,
    SSD channel, or storage server under concurrent load, and is the source
    of the emergent contention effects in the multi-pair experiments.
    """

    __slots__ = ("env", "bandwidth", "per_flow_cap", "_flows",
                 "_last_update", "_epoch", "_bytes_moved")

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        per_flow_cap: Optional[float] = None,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if per_flow_cap is not None and per_flow_cap <= 0:
            raise ValueError(f"per_flow_cap must be positive, got {per_flow_cap}")
        self.env = env
        self.bandwidth = float(bandwidth)
        self.per_flow_cap = per_flow_cap
        self._flows: List[_Flow] = []
        self._last_update = env.now
        self._epoch = 0  # invalidates stale completion wake-ups
        self._bytes_moved = 0.0  # lifetime accounting, for tests/metrics

    # -- public ------------------------------------------------------------
    @property
    def active_flows(self) -> int:
        """Number of in-flight transfers."""
        return len(self._flows)

    @property
    def bytes_moved(self) -> float:
        """Total bytes fully delivered over the lifetime of the channel."""
        return self._bytes_moved

    def current_rate(self) -> float:
        """Per-flow rate right now (``inf`` when idle)."""
        if not self._flows:
            return float("inf")
        rate = self.bandwidth / len(self._flows)
        if self.per_flow_cap is not None:
            rate = min(rate, self.per_flow_cap)
        return rate

    def set_bandwidth(self, bandwidth: float) -> None:
        """Change the channel's total bandwidth, rescheduling live flows.

        Used by the fault layer to model device/server degradation without
        tearing down in-flight transfers: elapsed bytes are drained at the
        old rate first, then every remaining flow is re-timed at the new
        rate. Restoring the original value reverses the slowdown the same
        way.
        """
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self._advance()
        self.bandwidth = float(bandwidth)
        self._reschedule()

    def transfer(self, nbytes: float) -> Event:
        """Begin moving ``nbytes``; the returned event fires at completion."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        done = Event(self.env)
        if nbytes == 0:
            done.succeed(0.0)
            return done
        self._advance()
        self._flows.append(_Flow(nbytes, done, self.env.now))
        self._reschedule()
        return done

    # -- machinery ----------------------------------------------------------
    # Flows whose residue drops below this many bytes are complete. The
    # residue comes from float rounding when a wake-up fires at the
    # projected completion instant; without a tolerance the channel can
    # spin on nanobyte remainders with zero-delay wake-ups.
    _RESIDUE = 1e-6

    def _advance(self) -> None:
        """Drain bytes for the elapsed interval at the prevailing rate."""
        now = self.env.now
        if not self._flows:
            self._last_update = now
            return
        elapsed = now - self._last_update
        self._last_update = now
        rate = self.current_rate()
        drained = max(rate * elapsed, 0.0)
        finished: List[_Flow] = []
        for flow in self._flows:
            flow.remaining -= drained
            if flow.remaining <= self._RESIDUE:
                finished.append(flow)
        for flow in finished:
            self._flows.remove(flow)
            self._bytes_moved += flow.total
            flow.done.succeed(now - flow.started)

    def _reschedule(self) -> None:
        """Schedule a wake-up at the earliest projected completion."""
        self._epoch += 1
        if not self._flows:
            return
        rate = self.current_rate()
        soonest = min(flow.remaining for flow in self._flows)
        eta = soonest / rate
        # A wake-up must land strictly after `now` in float arithmetic, or
        # `_advance` sees zero elapsed time and the channel spins forever on
        # a sub-ULP residue. The clamp is ~1e-12 relative — far below any
        # modelled device time.
        min_step = max(abs(self.env.now), 1.0) * 1e-12
        if eta < min_step:
            eta = min_step
        epoch = self._epoch
        wake = self.env.timeout(eta)
        wake.callbacks.append(lambda _ev, epoch=epoch: self._on_wake(epoch))

    def _on_wake(self, epoch: int) -> None:
        if epoch != self._epoch:
            return  # flow set changed since this wake-up was scheduled
        self._advance()
        self._reschedule()
