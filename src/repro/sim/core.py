"""Event loop, events, and coroutine processes for the DES kernel.

Design notes
------------
The kernel follows the classic event-list architecture: a binary heap of
``(time, priority, sequence, event)`` entries. Determinism matters more than
raw speed here — simultaneous events are ordered by priority then by
scheduling sequence, so two runs with the same seeds produce bit-identical
timelines. That determinism is what makes the experiment suite and the
hypothesis tests reproducible.

A :class:`Process` wraps a generator. The generator yields :class:`Event`
objects; when an event fires, the process resumes with the event's value (or
has the event's exception thrown into it). A process is itself an event that
fires when the generator returns, so processes can wait on each other.

Hot-path engineering (see ``docs/performance.md``)
--------------------------------------------------
Every I/O model in this reproduction bottoms out in ``env.timeout()``, so the
kernel is tuned for exactly that call:

- all event classes use ``__slots__`` (no per-event ``__dict__``);
- the schedule sequence is a plain integer incremented inline instead of an
  ``itertools.count`` call, and ``heapq.heappush``/``heappop`` are bound at
  module level;
- :meth:`Environment.timeout` builds the :class:`Timeout` without running the
  ``__init__`` chain and pushes the heap entry directly (an object *pool* was
  evaluated and rejected: user code may keep references to fired timeouts, so
  reuse could silently corrupt a later run's determinism);
- :meth:`Environment.run` inlines the dispatch loop instead of calling
  :meth:`step` per event.

Heap entries deliberately stay plain tuples: tuple comparison happens in C
during heap sifts, whereas comparing event objects via ``__lt__`` would call
back into the interpreter on every sift step. The sequence number keeps
entries unique, so the trailing event object is never compared. All of this
preserves the exact event ordering of the straightforward implementation —
the determinism tests assert serial/parallel/optimized runs are bit-identical.

Scheduled events support *lazy cancellation* (:meth:`Event.cancel`): the
heap entry stays in place, but the dispatcher skips it without invoking
callbacks. Removing an arbitrary entry from a binary heap is O(n); the
lazy scheme makes cancellation O(1) at the cost of a single ``is None``
test per dispatched event. The virtual-time bandwidth channels
(:class:`repro.sim.resources.SharedBandwidth`) rely on this to retire a
stale wake-up whenever their flow set changes — previously every such
re-schedule orphaned a live :class:`Timeout` whose callback still fired,
only to discover its epoch was stale.

Failure semantics
-----------------
A *failed* event must never vanish silently. When a failed event is
dispatched, the kernel re-raises its exception out of the event loop unless
some callback *defused* it — i.e. consciously consumed the failure. A
:class:`Process` defuses any failed event it was waiting on (the exception is
thrown into the generator instead), and a pending condition defuses a failed
sub-event by failing itself. A crashed process nobody waits on, or a
sub-event failing after its condition already triggered, therefore surfaces
instead of being dropped.
"""

from __future__ import annotations

from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import DeadlockError, Interrupt, SimulationError, StallError

__all__ = ["Environment", "Event", "Timeout", "Process", "AllOf", "AnyOf"]

# Priorities for simultaneous events: urgent (interrupts) fire before normal
# ones so an interrupted process never consumes the event it was waiting on.
URGENT = 0
NORMAL = 1

_PENDING = object()  # sentinel: event value not yet decided


class Event:
    """A happening that processes can wait for.

    An event starts *pending*, becomes *triggered* once scheduled with a
    value or an exception, and is *processed* after its callbacks ran.
    Callbacks are ``fn(event)`` callables; :class:`Process` registers its
    ``_resume`` bound method as a callback.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """True once a callback consumed this event's failure."""
        return self._defused

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire by raising ``exception`` in waiters."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay=delay)
        return self

    def cancel(self) -> bool:
        """Lazily cancel a triggered-but-unprocessed event.

        The heap entry stays where it is; the dispatcher skips it without
        invoking callbacks (the event then reads as *processed*). Only
        valid for events nobody waits on — cancelling an event with
        registered waiters would strand them, so the owner must guarantee
        it holds the only interest (the bandwidth channels' internal
        wake-ups satisfy this by construction). Returns ``True`` if the
        event was live, ``False`` if it had already been processed.
        """
        if self._value is _PENDING:
            raise SimulationError("cannot cancel an untriggered event")
        if self.callbacks is None:
            return False
        self.callbacks = None
        return True

    def __repr__(self) -> str:
        state = (
            "pending"
            if self._value is _PENDING
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation.

    The hot construction path is :meth:`Environment.timeout`, which builds
    the instance without running this ``__init__``; keep the two in sync.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self._defused = False
        self.delay = delay
        env._schedule(self, delay=delay)


class Initialize(Event):
    """Internal: kicks off a freshly created process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        self._defused = False
        env._schedule(self, priority=URGENT)


class Process(Event):
    """A running simulated activity wrapping a generator.

    The process is an event that triggers when the generator finishes; its
    value is the generator's return value. ``yield`` an :class:`Event` from
    inside the generator to wait for it.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None  # event we are waiting on
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`repro.errors.Interrupt` into the process.

        The process stops waiting on its current target (the target event
        stays valid for other waiters) and resumes immediately with the
        exception. Interrupting a finished process is an error.
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is None:
            raise SimulationError("cannot interrupt a process during init")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        # Stop listening to the old target, listen to the interrupt instead.
        if self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = event
        event.callbacks.append(self._resume)
        self.env._schedule(event, priority=URGENT)

    # -- machinery ---------------------------------------------------------
    def _resume(self, event: Event, _timeout_cls=Timeout) -> None:
        # _timeout_cls pre-binds the global as a local; never pass it.
        env = self.env
        env._active_proc = self
        generator = self._generator
        try:
            while True:
                try:
                    if event._ok:
                        target = generator.send(event._value)
                    else:
                        # We consume the failure by throwing it into the
                        # generator; it no longer needs to surface from the
                        # event loop (the generator may legitimately catch it).
                        event._defused = True
                        target = generator.throw(event._value)
                except StopIteration as exc:
                    self._ok = True
                    self._value = exc.value
                    env._schedule(self)
                    break
                except BaseException as exc:
                    self._ok = False
                    self._value = exc
                    env._schedule(self)
                    break

                if target.__class__ is not _timeout_cls and not isinstance(target, Event):
                    exc = SimulationError(
                        f"process yielded non-event {target!r}"
                    )
                    event = Event(env)
                    event._ok = False
                    event._value = exc
                    continue  # throw into generator on next loop
                if target.env is not env:
                    exc = SimulationError("event belongs to another Environment")
                    event = Event(env)
                    event._ok = False
                    event._value = exc
                    continue

                if target.callbacks is not None:
                    # Event still pending / not processed: wait for it.
                    self._target = target
                    target.callbacks.append(self._resume)
                    break
                # Already processed: resume synchronously with its value.
                event = target
        finally:
            env._active_proc = None


class ConditionValue(dict):
    """Mapping of event -> value returned by :class:`AllOf`/:class:`AnyOf`."""


class _Condition(Event):
    """Base for composite events over a fixed set of sub-events."""

    __slots__ = ("_events", "_unfired")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not self.env:
                raise SimulationError("event belongs to another Environment")
        self._unfired = len(self._events)
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if not self._events and not self.triggered:
            self.succeed(ConditionValue())

    def _collect(self) -> ConditionValue:
        return ConditionValue(
            (ev, ev._value) for ev in self._events if ev.callbacks is None
        )

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when *all* sub-events fired; fails fast on the first failure.

    A sub-event failing *after* the condition already triggered is not
    consumed here — it surfaces from the event loop (nobody is listening
    anymore, and silently dropping a crash would hide bugs).
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._unfired -= 1
        if self._unfired <= 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when *any* sub-event fired (or fails with the first failure).

    As with :class:`AllOf`, a sub-event failing after the condition already
    triggered surfaces from the event loop instead of being swallowed.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """The simulation environment: virtual clock plus event heap."""

    __slots__ = ("_now", "_heap", "_seq", "_active_proc")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: List = []
        self._seq = 0
        self._active_proc: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_proc

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None,
                _new=Timeout.__new__, _cls=Timeout, _push=_heappush) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` seconds from now.

        This is the dominant allocation of every I/O model, so the instance
        is built inline (no ``__init__`` chain) and scheduled directly; the
        trailing defaults pre-bind globals as locals — do not pass them.
        """
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        timeout = _new(_cls)
        timeout.env = self
        timeout.callbacks = []
        timeout._ok = True
        timeout._value = value
        timeout._defused = False
        timeout.delay = delay
        seq = self._seq
        self._seq = seq + 1
        _push(self._heap, (self._now + delay, 1, seq, timeout))  # 1 == NORMAL
        return timeout

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all ``events`` fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any of ``events`` fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (self._now + delay, priority, seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next event.

        Raises :class:`repro.errors.DeadlockError` when the heap is empty.
        """
        if not self._heap:
            raise DeadlockError("no scheduled events")
        when, _prio, _seq, event = _heappop(self._heap)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks = event.callbacks
        if callbacks is None:
            return  # lazily cancelled; skip without invoking anything
        event.callbacks = None  # mark processed
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failed event (including a crashed process) that no callback
            # consumed would silently vanish; surface it so bugs do not hide.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until the clock reaches it), or an :class:`Event` (run until it
        fires, returning its value). Running until a number never raises
        :class:`DeadlockError`; an empty heap simply advances the clock.
        """
        if until is None:
            # Inlined dispatch loop — identical semantics to step(), minus
            # the per-event method call. Scheduling rejects negative delays,
            # so the monotonic-clock guard of step() cannot trip here.
            heap = self._heap
            while heap:
                when, _prio, _seq, event = _heappop(heap)
                self._now = when
                callbacks = event.callbacks
                if callbacks is None:
                    continue  # lazily cancelled (Event.cancel)
                event.callbacks = None  # mark processed
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            return None
        if isinstance(until, Event):
            result: List[Any] = []

            def _capture(ev: Event) -> None:
                # run() re-raises a failed target itself below; mark the
                # failure as consumed so the dispatch loop defers to us.
                ev._defused = True
                result.append(ev)

            if until.callbacks is None:
                if not until._ok:
                    raise until._value
                return until._value
            until.callbacks.append(_capture)
            while not result:
                if not self._heap:
                    raise DeadlockError(
                        "simulation ran out of events before target fired"
                    )
                self.step()
            if not until._ok:
                raise until._value
            return until._value
        # numeric horizon
        horizon = float(until)
        if horizon < self._now:
            raise ValueError("cannot run backwards in time")
        heap = self._heap
        while heap and heap[0][0] <= horizon:
            when, _prio, _seq, event = _heappop(heap)
            self._now = when
            callbacks = event.callbacks
            if callbacks is None:
                continue  # lazily cancelled (Event.cancel)
            event.callbacks = None  # mark processed
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
        self._now = horizon
        return None

    def run_guarded(self, max_events: Optional[int] = None,
                    max_time: Optional[float] = None,
                    detail: Optional[Callable[[], str]] = None) -> None:
        """Run until no events remain, under a stall watchdog.

        Faulty runs (see :mod:`repro.faults`) can deadlock or spin when a
        recovery loop never converges — e.g. a retry storm with zero-delay
        backoff, or a restore event that a buggy plan never schedules.
        This loop dispatches events exactly like :meth:`run` (determinism
        tests assert bit-identity) but raises a diagnosable
        :class:`repro.errors.StallError` once ``max_events`` events have
        been dispatched or the clock passes ``max_time``, instead of
        spinning forever or silently returning incomplete results.

        ``detail``, when given, is called only at StallError time and its
        string is appended to the watchdog message — callers use it to
        name domain-level occupancy (which process holds which credit,
        which watch is armed) without the kernel knowing about any of it.

        The guarded loop lives off the hot path on purpose: fault-free
        campaigns keep the tuned :meth:`run` dispatch loop.
        """
        def _suffix() -> str:
            if detail is None:
                return ""
            text = detail()
            return f" — {text}" if text else ""

        heap = self._heap
        events = 0
        while heap:
            if max_time is not None and heap[0][0] > max_time:
                raise StallError(
                    f"stall watchdog: next event at t={heap[0][0]:.6g}s is "
                    f"past the horizon of {max_time:.6g}s after {events} "
                    f"events ({len(heap)} still scheduled) — recovery is "
                    f"not converging{_suffix()}"
                )
            if max_events is not None and events >= max_events:
                raise StallError(
                    f"stall watchdog: event budget of {max_events} "
                    f"exhausted at t={self._now:.6g}s "
                    f"({len(heap)} still scheduled) — the run is spinning "
                    f"without completing{_suffix()}"
                )
            events += 1
            when, _prio, _seq, event = _heappop(heap)
            self._now = when
            callbacks = event.callbacks
            if callbacks is None:
                continue  # lazily cancelled (Event.cancel)
            event.callbacks = None  # mark processed
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
        return None
