"""Event loop, events, and coroutine processes for the DES kernel.

Design notes
------------
The kernel follows the classic event-list architecture: a binary heap of
``(time, priority, sequence, event)`` entries. Determinism matters more than
raw speed here — simultaneous events are ordered by priority then by
scheduling sequence, so two runs with the same seeds produce bit-identical
timelines. That determinism is what makes the experiment suite and the
hypothesis tests reproducible.

A :class:`Process` wraps a generator. The generator yields :class:`Event`
objects; when an event fires, the process resumes with the event's value (or
has the event's exception thrown into it). A process is itself an event that
fires when the generator returns, so processes can wait on each other.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import DeadlockError, Interrupt, SimulationError

__all__ = ["Environment", "Event", "Timeout", "Process", "AllOf", "AnyOf"]

# Priorities for simultaneous events: urgent (interrupts) fire before normal
# ones so an interrupted process never consumes the event it was waiting on.
URGENT = 0
NORMAL = 1

_PENDING = object()  # sentinel: event value not yet decided


class Event:
    """A happening that processes can wait for.

    An event starts *pending*, becomes *triggered* once scheduled with a
    value or an exception, and is *processed* after its callbacks ran.
    Callbacks are ``fn(event)`` callables; :class:`Process` registers its
    ``_resume`` bound method as a callback.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire by raising ``exception`` in waiters."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay=delay)
        return self

    def __repr__(self) -> str:
        state = (
            "pending"
            if not self.triggered
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class Initialize(Event):
    """Internal: kicks off a freshly created process at the current time."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self, priority=URGENT)


class Process(Event):
    """A running simulated activity wrapping a generator.

    The process is an event that triggers when the generator finishes; its
    value is the generator's return value. ``yield`` an :class:`Event` from
    inside the generator to wait for it.
    """

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None  # event we are waiting on
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`repro.errors.Interrupt` into the process.

        The process stops waiting on its current target (the target event
        stays valid for other waiters) and resumes immediately with the
        exception. Interrupting a finished process is an error.
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is None:
            raise SimulationError("cannot interrupt a process during init")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        # Stop listening to the old target, listen to the interrupt instead.
        if self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = event
        event.callbacks.append(self._resume)
        self.env._schedule(event, priority=URGENT)

    # -- machinery ---------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.env._active_proc = self
        try:
            while True:
                try:
                    if event._ok:
                        target = self._generator.send(event._value)
                    else:
                        target = self._generator.throw(event._value)
                except StopIteration as exc:
                    self._ok = True
                    self._value = exc.value
                    self.env._schedule(self)
                    break
                except BaseException as exc:
                    self._ok = False
                    self._value = exc
                    self.env._schedule(self)
                    break

                if not isinstance(target, Event):
                    exc = SimulationError(
                        f"process yielded non-event {target!r}"
                    )
                    event = Event(self.env)
                    event._ok = False
                    event._value = exc
                    continue  # throw into generator on next loop
                if target.env is not self.env:
                    exc = SimulationError("event belongs to another Environment")
                    event = Event(self.env)
                    event._ok = False
                    event._value = exc
                    continue

                if target.callbacks is not None:
                    # Event still pending / not processed: wait for it.
                    self._target = target
                    target.callbacks.append(self._resume)
                    break
                # Already processed: resume synchronously with its value.
                event = target
        finally:
            self.env._active_proc = None


class ConditionValue(dict):
    """Mapping of event -> value returned by :class:`AllOf`/:class:`AnyOf`."""


class _Condition(Event):
    """Base for composite events over a fixed set of sub-events."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not self.env:
                raise SimulationError("event belongs to another Environment")
        self._unfired = len(self._events)
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if not self._events and not self.triggered:
            self.succeed(ConditionValue())

    def _collect(self) -> ConditionValue:
        return ConditionValue(
            (ev, ev._value) for ev in self._events if ev.callbacks is None
        )

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when *all* sub-events fired; fails fast on the first failure."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._unfired -= 1
        if self._unfired <= 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when *any* sub-event fired (or fails with the first failure)."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """The simulation environment: virtual clock plus event heap."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: List = []
        self._seq = count()
        self._active_proc: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_proc

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all ``events`` fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any of ``events`` fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        heapq.heappush(
            self._heap, (self._now + delay, priority, next(self._seq), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next event.

        Raises :class:`repro.errors.DeadlockError` when the heap is empty.
        """
        if not self._heap:
            raise DeadlockError("no scheduled events")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if not event._ok and not callbacks:
            # A failed event (including a crashed process) nobody waited for
            # would silently vanish; surface it so bugs do not hide.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until the clock reaches it), or an :class:`Event` (run until it
        fires, returning its value). Running until a number never raises
        :class:`DeadlockError`; an empty heap simply advances the clock.
        """
        if until is None:
            while self._heap:
                self.step()
            return None
        if isinstance(until, Event):
            result: List[Any] = []

            def _capture(ev: Event) -> None:
                result.append(ev)

            if until.callbacks is None:
                if not until._ok:
                    raise until._value
                return until._value
            until.callbacks.append(_capture)
            while not result:
                if not self._heap:
                    raise DeadlockError(
                        "simulation ran out of events before target fired"
                    )
                self.step()
            if not until._ok:
                raise until._value
            return until._value
        # numeric horizon
        horizon = float(until)
        if horizon < self._now:
            raise ValueError("cannot run backwards in time")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
