"""Deterministic named random-number streams for simulations.

Every stochastic element of the simulated cluster (device jitter, Lustre
cross-traffic, service-time variation) draws from its own named stream so
that adding a new source of randomness never perturbs existing ones — a
standard variance-reduction practice in simulation studies. Streams are
derived from a root seed with :class:`numpy.random.SeedSequence`, so runs
are reproducible across platforms.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """A family of independent, named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``.

        The same (seed, name) pair always yields the same sequence,
        regardless of creation order of other streams.
        """
        gen = self._streams.get(name)
        if gen is None:
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(_stable_hash(name),),
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def jitter(self, name: str, mean: float, cv: float) -> float:
        """One positive sample around ``mean`` with coefficient of variation ``cv``.

        Uses a lognormal so samples are strictly positive; ``cv = 0``
        returns ``mean`` exactly (deterministic mode).
        """
        if mean < 0:
            raise ValueError(f"mean must be non-negative, got {mean}")
        if cv < 0:
            raise ValueError(f"cv must be non-negative, got {cv}")
        if mean == 0.0 or cv == 0.0:
            return mean
        sigma2 = np.log1p(cv * cv)
        mu = np.log(mean) - 0.5 * sigma2
        return float(self.stream(name).lognormal(mu, np.sqrt(sigma2)))

    def spawn(self, index: int) -> "RngStreams":
        """Derive an independent child family (one per repetition run)."""
        return RngStreams(seed=_mix(self.seed, index))

    def names(self) -> Iterator[str]:
        """Iterate over stream names created so far."""
        return iter(self._streams)


def _stable_hash(name: str) -> int:
    """Platform-stable 32-bit hash of a stream name (FNV-1a)."""
    acc = 2166136261
    for byte in name.encode("utf-8"):
        acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
    return acc


def _mix(seed: int, index: int) -> int:
    """Mix a run index into a root seed (splitmix64 finalizer)."""
    z = (seed * 0x9E3779B97F4A7C15 + index + 1) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return (z ^ (z >> 31)) & 0x7FFFFFFF
