"""Naive reference implementations kept as differential-test oracles.

:class:`ReferenceSharedBandwidth` is the pre-rewrite O(n²) fluid-flow
channel, preserved verbatim (minus the epoch machinery's reliance on
being the only implementation): on every flow arrival, completion, and
``set_bandwidth`` it re-scans *all* concurrent flows to drain elapsed
bytes and re-times the earliest completion from scratch. That is obviously
correct — each flow's remaining byte count is materialized and advanced
directly from the processor-sharing definition — which is exactly what an
oracle should be.

The production :class:`repro.sim.resources.SharedBandwidth` replaces the
per-flow re-timing with a virtual service clock and a finish-key heap
(O(log n) per event). The differential tests in
``tests/sim/test_channel_differential.py`` drive both implementations
through randomized arrival schedules — mixed sizes, ``per_flow_cap`` on
and off, mid-stream ``set_bandwidth`` (the fault path), zero-byte
transfers — and assert completion times and orders agree to within float
tolerance. Keep this module dumb and readable; never optimize it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.core import Environment, Event

__all__ = ["ReferenceSharedBandwidth"]


class _Flow:
    """One active transfer: remaining bytes are materialized and drained."""

    __slots__ = ("total", "remaining", "done", "started")

    def __init__(self, nbytes: float, done: Event, started: float) -> None:
        self.total = float(nbytes)
        self.remaining = float(nbytes)
        self.done = done
        self.started = started


class ReferenceSharedBandwidth:
    """O(n²) egalitarian processor-sharing channel (the rewrite's oracle).

    API-compatible with :class:`repro.sim.resources.SharedBandwidth` for
    everything the tests and benchmarks exercise: ``transfer``,
    ``set_bandwidth``, ``current_rate``, ``active_flows``, ``bytes_moved``.
    """

    #: completion tolerance in bytes — matches the production channel
    _RESIDUE = 1e-6

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        per_flow_cap: Optional[float] = None,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if per_flow_cap is not None and per_flow_cap <= 0:
            raise ValueError(f"per_flow_cap must be positive, got {per_flow_cap}")
        self.env = env
        self.bandwidth = float(bandwidth)
        self._per_flow_cap = per_flow_cap
        self._flows: List[_Flow] = []
        self._last_update = env.now
        self._epoch = 0  # invalidates stale completion wake-ups
        self._bytes_moved = 0.0

    @property
    def per_flow_cap(self) -> Optional[float]:
        """Per-flow rate ceiling; assignment segments like the production
        channel's setter — drain the elapsed interval at the old cap, then
        re-time every live flow under the new one."""
        return self._per_flow_cap

    @per_flow_cap.setter
    def per_flow_cap(self, cap: Optional[float]) -> None:
        if cap is not None and cap <= 0:
            raise ValueError(f"per_flow_cap must be positive, got {cap}")
        self._advance()
        self._per_flow_cap = cap
        self._reschedule()

    @property
    def active_flows(self) -> int:
        """Number of in-flight transfers."""
        return len(self._flows)

    @property
    def bytes_moved(self) -> float:
        """Total bytes fully delivered over the lifetime of the channel."""
        return self._bytes_moved

    def current_rate(self) -> float:
        """Per-flow rate right now (``inf`` when idle)."""
        if not self._flows:
            return float("inf")
        rate = self.bandwidth / len(self._flows)
        if self._per_flow_cap is not None:
            rate = min(rate, self._per_flow_cap)
        return rate

    def set_bandwidth(self, bandwidth: float) -> None:
        """Change total bandwidth, draining then re-timing every live flow."""
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self._advance()
        self.bandwidth = float(bandwidth)
        self._reschedule()

    def transfer(self, nbytes: float) -> Event:
        """Begin moving ``nbytes``; the returned event fires at completion."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        done = Event(self.env)
        if nbytes == 0:
            done.succeed(0.0)
            return done
        self._advance()
        self._flows.append(_Flow(nbytes, done, self.env.now))
        self._reschedule()
        return done

    def _advance(self) -> None:
        """Drain bytes for the elapsed interval at the prevailing rate."""
        now = self.env.now
        if not self._flows:
            self._last_update = now
            return
        elapsed = now - self._last_update
        self._last_update = now
        rate = self.current_rate()
        drained = max(rate * elapsed, 0.0)
        finished: List[_Flow] = []
        for flow in self._flows:
            flow.remaining -= drained
            if flow.remaining <= self._RESIDUE:
                finished.append(flow)
        for flow in finished:
            self._flows.remove(flow)  # O(n): the oracle stays naive
            self._bytes_moved += flow.total
            flow.done.succeed(now - flow.started)

    def _reschedule(self) -> None:
        """Schedule a wake-up at the earliest projected completion."""
        self._epoch += 1
        if not self._flows:
            return
        rate = self.current_rate()
        soonest = min(flow.remaining for flow in self._flows)
        eta = soonest / rate
        # Same strictly-after-now clamp as the production channel.
        min_step = max(abs(self.env.now), 1.0) * 1e-12
        if eta < min_step:
            eta = min_step
        epoch = self._epoch
        wake = self.env.timeout(eta)
        wake.callbacks.append(lambda _ev, epoch=epoch: self._on_wake(epoch))

    def _on_wake(self, epoch: int) -> None:
        if epoch != self._epoch:
            return  # flow set changed since this wake-up was scheduled
        self._advance()
        self._reschedule()
