"""Discrete-event simulation (DES) kernel.

A deliberately small, deterministic event-driven kernel in the style of
SimPy: simulated activities are Python generators that ``yield`` events
(most commonly timeouts or resource grants) and are resumed by the
:class:`~repro.sim.core.Environment` when those events fire.

The kernel is the foundation for every simulated substrate in this
repository: SSDs, the InfiniBand-like fabric, Lustre servers, the Flux-like
KVS, and the DYAD service are all built from the primitives here.

Public API
----------
- :class:`~repro.sim.core.Environment` — event loop and virtual clock.
- :class:`~repro.sim.core.Event`, :class:`~repro.sim.core.Timeout`,
  :class:`~repro.sim.core.Process`, :class:`~repro.sim.core.AllOf`,
  :class:`~repro.sim.core.AnyOf` — awaitables.
- :class:`~repro.sim.resources.Resource` — FIFO server with capacity.
- :class:`~repro.sim.resources.Store` — unbounded FIFO message queue.
- :class:`~repro.sim.resources.SharedBandwidth` — fluid-flow
  processor-sharing channel (fabric links, OSS bandwidth).
- :class:`~repro.sim.resources.Signal` — broadcast condition (KVS watch).
- :class:`~repro.sim.rng.RngStreams` — named deterministic RNG streams.
"""

from repro.sim.core import AllOf, AnyOf, Environment, Event, Process, Timeout
from repro.sim.resources import Resource, SharedBandwidth, Signal, Store
from repro.sim.rng import RngStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "Resource",
    "SharedBandwidth",
    "Signal",
    "Store",
    "RngStreams",
]
