"""Execution backends for the producer/consumer middleware protocol.

Two backends implement the same conceptual transport:

- the **simulated** backend is the cluster-scale DES used for every paper
  experiment (:mod:`repro.workflow` drives it directly);
- the **local** backend (:mod:`repro.backends.local`) runs the same DYAD
  protocol — node-local staging directories, a key-value store with
  watch-based first-touch synchronization, flock fast path, a pull-based
  transfer step — with *real threads, real files, and real locks* on the
  local machine. It exists to demonstrate the middleware logic is a real
  protocol rather than a timing model, and powers the runnable examples.
"""

from repro.backends.local import (
    LocalDyad,
    LocalKVS,
    LocalWorkflowReport,
    run_local_workflow,
)

__all__ = [
    "LocalDyad",
    "LocalKVS",
    "LocalWorkflowReport",
    "run_local_workflow",
]
