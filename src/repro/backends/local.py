"""Real-concurrency local backend: the DYAD protocol with actual threads.

Everything here is real: frames are real bytes on a real file system,
producers and consumers are Python threads, the per-"node" staging areas
are directories, locks are ``fcntl.flock`` on the staged files, and the
key-value store is an in-process dict guarded by a condition variable with
genuine blocking watches.

The mapping from the simulated world:

==========================  =====================================
simulated                   local
==========================  =====================================
node                        a staging subdirectory (``node00/``…)
node-local SSD write        real file write into the staging dir
KVS commit / watch          :class:`LocalKVS` (condition variable)
flock fast path             ``fcntl.flock`` shared lock
RDMA pull                   file copy between staging dirs
==========================  =====================================

This is the backend the examples use to run *genuine* MD trajectories
(from :mod:`repro.md.engine`) through the middleware.
"""

from __future__ import annotations

import os
import shutil
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import DyadError, KeyNotFound
from repro.perf.caliper import Annotator, Caliper, Category

try:  # fcntl is POSIX-only; the backend degrades to lock-free on others
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "LocalKVS",
    "LocalDyad",
    "LocalSharedDir",
    "LocalWorkflowReport",
    "run_local_workflow",
    "run_local_comparison",
]


class LocalKVS:
    """In-process key-value store with blocking watches."""

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}
        self._cond = threading.Condition()

    def commit(self, key: str, value: Any) -> None:
        """Publish a key and wake all watchers."""
        with self._cond:
            self._data[key] = value
            self._cond.notify_all()

    def lookup(self, key: str) -> Any:
        """Non-blocking fetch; raises :class:`KeyNotFound` on miss."""
        with self._cond:
            if key not in self._data:
                raise KeyNotFound(key)
            return self._data[key]

    def wait_for(self, key: str, timeout: Optional[float] = None) -> Any:
        """Block until the key is committed; returns its value."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while key not in self._data:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(f"kvs key {key!r} never appeared")
                self._cond.wait(remaining)
            return self._data[key]

    def __len__(self) -> int:
        with self._cond:
            return len(self._data)


@dataclass(frozen=True)
class _LocalRecord:
    """Ownership record in the local KVS."""

    node: str
    relpath: str
    size: int


class LocalDyad:
    """The DYAD protocol over real directories and threads.

    ``root`` contains one staging directory per simulated node. Producers
    bind to a node with :meth:`producer`; consumers with :meth:`consumer`.
    """

    def __init__(self, root: os.PathLike, nodes: int = 2) -> None:
        if nodes < 1:
            raise DyadError("need at least one node")
        self.root = Path(root)
        self.kvs = LocalKVS()
        self.node_ids = [f"node{i:02d}" for i in range(nodes)]
        for node in self.node_ids:
            (self.root / node).mkdir(parents=True, exist_ok=True)

    def staging_dir(self, node: str) -> Path:
        """Staging directory of one node."""
        if node not in self.node_ids:
            raise DyadError(f"unknown node {node!r}")
        return self.root / node

    # -- producer side ------------------------------------------------------------
    def produce(
        self,
        node: str,
        relpath: str,
        payload: bytes,
        annotator: Optional[Annotator] = None,
    ) -> None:
        """Stage ``payload`` under ``node`` and publish its record."""
        ann = annotator or _NULL_ANN
        target = self.staging_dir(node) / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        ann.begin("dyad_produce", Category.MOVEMENT)
        ann.begin("write_single_buf")
        with open(target, "wb") as fh:
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            finally:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        ann.end("write_single_buf")
        ann.begin("dyad_commit")
        self.kvs.commit(
            f"dyad/{relpath}", _LocalRecord(node=node, relpath=relpath, size=len(payload))
        )
        ann.end("dyad_commit")
        ann.end("dyad_produce")

    # -- consumer side ------------------------------------------------------------
    def consume(
        self,
        node: str,
        relpath: str,
        annotator: Optional[Annotator] = None,
        timeout: float = 30.0,
    ) -> bytes:
        """Obtain a staged frame, pulling it from its owner if remote."""
        ann = annotator or _NULL_ANN
        key = f"dyad/{relpath}"
        ann.begin("dyad_consume", Category.MOVEMENT)
        ann.begin("dyad_fetch")
        try:
            record: _LocalRecord = self.kvs.lookup(key)
        except KeyNotFound:
            ann.begin("dyad_wait_data", Category.IDLE)
            record = self.kvs.wait_for(key, timeout=timeout)
            ann.end("dyad_wait_data")
        ann.end("dyad_fetch")

        local = self.staging_dir(node) / relpath
        if record.node != node:
            source = self.staging_dir(record.node) / relpath
            ann.begin("dyad_get_data")
            data = self._locked_read(source)
            ann.end("dyad_get_data")
            ann.begin("dyad_cons_store")
            local.parent.mkdir(parents=True, exist_ok=True)
            with open(local, "wb") as fh:
                fh.write(data)
            ann.end("dyad_cons_store")
        ann.end("dyad_consume")

        ann.begin("read_single_buf", Category.MOVEMENT)
        payload = self._locked_read(local)
        ann.end("read_single_buf")
        if len(payload) != record.size:
            raise DyadError(
                f"{relpath}: read {len(payload)} bytes, expected {record.size}"
            )
        return payload

    @staticmethod
    def _locked_read(path: Path) -> bytes:
        with open(path, "rb") as fh:
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_SH)
            try:
                return fh.read()
            finally:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)


class _NullAnnotator:
    """No-op annotator for un-instrumented calls."""

    def begin(self, region: str, category: Optional[str] = None) -> None:
        pass

    def end(self, region: str) -> None:
        pass


_NULL_ANN = _NullAnnotator()


@dataclass
class LocalWorkflowReport:
    """Outcome of a real-threads workflow run."""

    frames: int
    pairs: int
    elapsed: float
    caliper: Caliper
    errors: List[BaseException] = field(default_factory=list)
    checksums_ok: bool = True

    @property
    def ok(self) -> bool:
        """True when every pair transferred every frame intact."""
        return not self.errors and self.checksums_ok


def run_local_workflow(
    root: os.PathLike,
    frame_source: Callable[[int, int], bytes],
    frames: int = 8,
    pairs: int = 2,
    consumer_check: Optional[Callable[[int, int, bytes], bool]] = None,
    produce_period: float = 0.0,
    consume_timeout: float = 30.0,
) -> LocalWorkflowReport:
    """Run a real producer/consumer ensemble through :class:`LocalDyad`.

    ``frame_source(pair, index)`` returns the payload each producer writes;
    ``consumer_check(pair, index, payload)`` (optional) validates what the
    consumer read. Producers live on ``node00``, consumers on ``node01``,
    mirroring the paper's two-node configuration.
    """
    dyad = LocalDyad(root, nodes=2)
    caliper = Caliper(clock=time.monotonic)
    errors: List[BaseException] = []
    checks: List[bool] = []
    lock = threading.Lock()

    def producer(pair: int) -> None:
        ann = producer_anns[pair]
        try:
            for k in range(frames):
                if produce_period:
                    time.sleep(produce_period)
                payload = frame_source(pair, k)
                dyad.produce("node00", f"pair{pair}/frame{k}.mdfr", payload, ann)
        except BaseException as exc:  # noqa: BLE001 - collected for the report
            with lock:
                errors.append(exc)

    def consumer(pair: int) -> None:
        ann = consumer_anns[pair]
        try:
            for k in range(frames):
                payload = dyad.consume(
                    "node01", f"pair{pair}/frame{k}.mdfr", ann,
                    timeout=consume_timeout,
                )
                if consumer_check is not None:
                    ok = consumer_check(pair, k, payload)
                    with lock:
                        checks.append(ok)
        except BaseException as exc:  # noqa: BLE001
            with lock:
                errors.append(exc)

    producer_anns = [caliper.annotator(f"producer{p}") for p in range(pairs)]
    consumer_anns = [caliper.annotator(f"consumer{p}") for p in range(pairs)]
    threads = [
        threading.Thread(target=producer, args=(p,), name=f"prod{p}")
        for p in range(pairs)
    ] + [
        threading.Thread(target=consumer, args=(p,), name=f"cons{p}")
        for p in range(pairs)
    ]
    start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - start
    return LocalWorkflowReport(
        frames=frames,
        pairs=pairs,
        elapsed=elapsed,
        caliper=caliper,
        errors=errors,
        checksums_ok=all(checks) if checks else True,
    )


class LocalSharedDir:
    """The *traditional* data path with real threads: a shared directory.

    Mirrors the paper's XFS/Lustre workflows on a real machine: producers
    write frames into one shared directory (atomic rename so readers never
    observe partial files), and consumers discover them by polling —
    exactly the Pegasus-style manual synchronization of the paper's
    Section III. No metadata service, no automatic sync, no locks needed
    thanks to the rename barrier.
    """

    def __init__(self, root: os.PathLike, poll_interval: float = 0.01) -> None:
        if poll_interval <= 0:
            raise DyadError("poll_interval must be positive")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.poll_interval = poll_interval

    def produce(
        self,
        relpath: str,
        payload: bytes,
        annotator: Optional[Annotator] = None,
    ) -> None:
        """Write a frame; visible to consumers only once complete."""
        ann = annotator or _NULL_ANN
        target = self.root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_suffix(target.suffix + ".part")
        ann.begin("write_single_buf", Category.MOVEMENT)
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)  # atomic publish
        ann.end("write_single_buf")

    def consume(
        self,
        relpath: str,
        annotator: Optional[Annotator] = None,
        timeout: float = 30.0,
    ) -> bytes:
        """Poll until the frame exists, then read it."""
        ann = annotator or _NULL_ANN
        target = self.root / relpath
        deadline = time.monotonic() + timeout
        ann.begin("poll_sync", Category.IDLE)
        while not target.exists():
            if time.monotonic() > deadline:
                ann.end("poll_sync")
                raise TimeoutError(f"frame {relpath} never appeared")
            time.sleep(self.poll_interval)
        ann.end("poll_sync")
        ann.begin("read_single_buf", Category.MOVEMENT)
        with open(target, "rb") as fh:
            payload = fh.read()
        ann.end("read_single_buf")
        return payload


def run_local_comparison(
    root: os.PathLike,
    frame_source: Callable[[int, int], bytes],
    frames: int = 8,
    pairs: int = 2,
    produce_period: float = 0.02,
    poll_interval: float = 0.01,
) -> Dict[str, LocalWorkflowReport]:
    """Run the same workload through LocalDyad *and* the shared directory.

    Returns ``{"dyad": report, "shared-dir": report}`` — a real-machine
    miniature of the paper's comparison (wall-clock seconds, actual
    threads and files). The DYAD path's blocking KVS watch wakes consumers
    immediately on commit; the shared-dir path pays poll latency.
    """
    root = Path(root)
    reports: Dict[str, LocalWorkflowReport] = {}

    # --- DYAD path -----------------------------------------------------------
    reports["dyad"] = run_local_workflow(
        root / "dyad", frame_source, frames=frames, pairs=pairs,
        produce_period=produce_period,
    )

    # --- shared-dir path -----------------------------------------------------
    shared = LocalSharedDir(root / "shared", poll_interval=poll_interval)
    caliper = Caliper(clock=time.monotonic)
    errors: List[BaseException] = []
    lock = threading.Lock()
    producer_anns = [caliper.annotator(f"producer{p}") for p in range(pairs)]
    consumer_anns = [caliper.annotator(f"consumer{p}") for p in range(pairs)]

    def producer(pair: int) -> None:
        try:
            for k in range(frames):
                if produce_period:
                    time.sleep(produce_period)
                shared.produce(
                    f"pair{pair}/frame{k}.mdfr", frame_source(pair, k),
                    producer_anns[pair],
                )
        except BaseException as exc:  # noqa: BLE001
            with lock:
                errors.append(exc)

    def consumer(pair: int) -> None:
        try:
            for k in range(frames):
                shared.consume(
                    f"pair{pair}/frame{k}.mdfr", consumer_anns[pair],
                )
        except BaseException as exc:  # noqa: BLE001
            with lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=producer, args=(p,)) for p in range(pairs)
    ] + [
        threading.Thread(target=consumer, args=(p,)) for p in range(pairs)
    ]
    start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    reports["shared-dir"] = LocalWorkflowReport(
        frames=frames, pairs=pairs, elapsed=time.monotonic() - start,
        caliper=caliper, errors=errors,
    )
    return reports
