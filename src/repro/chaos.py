"""Chaos soak: seeded random fault plans, invariant-checked, shrinkable.

The fault subsystem can schedule anything; the invariant checker can
catch any lie; this module closes the loop. :func:`random_plan` draws a
seeded random :class:`~repro.faults.plan.FaultPlan` against one workload,
:func:`execute_plan` runs it through the hardened campaign runner with
the invariant checker armed and classifies the outcome, and
:func:`soak` sweeps a grid of such plans asserting that every run either
completes with **zero invariant violations** or fails *diagnosed* — a
typed error (stall, exhausted retries) that names what went wrong. A
silent lie (a violation, or an untyped crash) is the only failure mode.

When a plan does induce a violation, :func:`shrink` reduces it
delta-debugging style — drop events, then narrow windows, then soften
severities/rates — to a minimal plan that still reproduces, and
:func:`save_plan`/:func:`load_plan` round-trip that repro through JSON
so it can be replayed byte-for-byte on another machine
(``python -m repro.experiments --fault-plan repro.json …``).

Integrity kinds (``torn_write``/``bit_corrupt``) are scheduled only on
DYAD workloads: the checked DYAD client detects the damage and re-fetches
(so the soak asserts recovery), while the traditional POSIX systems have
no detection path — damaging their data at rest *necessarily* violates
conservation, which is the unchecked-consumer scenario the acceptance
tests pin separately, not a soak regression.

Everything here is a pure function of its seeds: no wall-clock, no
global RNG. The same ``base_seed`` reproduces the same plans, the same
outcomes, and the same shrunk repros.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dyad.config import DyadConfig
from repro.errors import (
    FaultPlanError,
    InvariantViolation,
    ReproError,
    StallError,
)
from repro.faults.plan import FaultEvent, FaultPlan
from repro.invariants import InvariantConfig
from repro.workflow.spec import (
    Placement, SyncMode, System, Topology, WorkflowSpec,
)

__all__ = [
    "ChaosOutcome",
    "ChaosReport",
    "chaos_workloads",
    "random_plan",
    "execute_plan",
    "shrink",
    "save_plan",
    "load_plan",
    "soak",
]

#: Fault kinds a chaos plan may schedule, per system under test (see
#: module docstring for why integrity kinds are DYAD-only here).
KINDS_BY_SYSTEM: Dict[System, Tuple[str, ...]] = {
    System.DYAD: (
        "dyad_crash", "node_crash", "link_flap", "ssd_degrade",
        "torn_write", "bit_corrupt", "stale_metadata",
    ),
    System.XFS: ("ssd_degrade", "link_flap"),
    System.LUSTRE: ("lustre_slowdown", "link_flap", "stale_metadata"),
}


def chaos_workloads(frames: int = 8, streaming: bool = False,
                    topology: bool = False) -> List[WorkflowSpec]:
    """The small workload grid a soak cycles through.

    ``streaming=True`` swaps in the streaming grid: every streaming sync
    mode (windowed / pubsub / nbuffer) across all three systems, with
    mixed window sizes — the surface where credits can leak, windows can
    deadlock, and watch wake-ups can be lost. ``topology=True`` swaps in
    the non-pairwise grid instead: fan-out, fan-in, and work-stealing
    shapes across all three systems, mixing manual and streaming sync —
    the surface where the shared-read single-flight tier, per-edge credit
    ledgers, and the aggregation/pool drain invariants meet injected
    faults. The default grid is unchanged so existing soak seeds replay
    identically.
    """
    if topology:
        return [
            WorkflowSpec(system=System.DYAD, frames=frames, pairs=1,
                         placement=Placement.SPLIT,
                         topology=Topology.FANOUT, consumers=4),
            WorkflowSpec(system=System.DYAD, frames=frames, pairs=1,
                         placement=Placement.SPLIT,
                         topology=Topology.FANIN, producers=3,
                         sync_mode=SyncMode.WINDOWED),
            WorkflowSpec(system=System.DYAD, frames=frames, pairs=1,
                         placement=Placement.SPLIT,
                         topology=Topology.POOL, producers=2, consumers=3),
            WorkflowSpec(system=System.XFS, frames=frames, pairs=1,
                         placement=Placement.SINGLE_NODE,
                         topology=Topology.POOL, producers=2, consumers=3,
                         sync_mode=SyncMode.POLLING),
            WorkflowSpec(system=System.LUSTRE, frames=frames, pairs=1,
                         placement=Placement.SPLIT,
                         topology=Topology.FANOUT, consumers=2,
                         sync_mode=SyncMode.WINDOWED),
            WorkflowSpec(system=System.LUSTRE, frames=frames, pairs=1,
                         placement=Placement.SPLIT,
                         topology=Topology.FANIN, producers=4),
        ]
    if streaming:
        return [
            WorkflowSpec(system=System.DYAD, frames=frames, pairs=1,
                         placement=Placement.SPLIT,
                         sync_mode=SyncMode.WINDOWED),
            WorkflowSpec(system=System.DYAD, frames=frames, pairs=2,
                         placement=Placement.SPLIT,
                         sync_mode=SyncMode.PUBSUB),
            WorkflowSpec(system=System.XFS, frames=frames, pairs=1,
                         placement=Placement.SINGLE_NODE,
                         sync_mode=SyncMode.WINDOWED, window=4),
            WorkflowSpec(system=System.XFS, frames=frames, pairs=1,
                         placement=Placement.SINGLE_NODE,
                         sync_mode=SyncMode.NBUFFER),
            WorkflowSpec(system=System.LUSTRE, frames=frames, pairs=1,
                         placement=Placement.SPLIT,
                         sync_mode=SyncMode.PUBSUB),
            WorkflowSpec(system=System.LUSTRE, frames=frames, pairs=2,
                         placement=Placement.SPLIT,
                         sync_mode=SyncMode.WINDOWED, window=1),
        ]
    return [
        WorkflowSpec(system=System.DYAD, frames=frames, pairs=1,
                     placement=Placement.SPLIT),
        WorkflowSpec(system=System.DYAD, frames=frames, pairs=2,
                     placement=Placement.SPLIT),
        WorkflowSpec(system=System.XFS, frames=frames, pairs=1,
                     placement=Placement.SINGLE_NODE),
        WorkflowSpec(system=System.LUSTRE, frames=frames, pairs=1,
                     placement=Placement.SPLIT),
    ]


# ---------------------------------------------------------------------------
# plan generation
# ---------------------------------------------------------------------------


def random_plan(seed: int, spec: WorkflowSpec,
                max_events: int = 4) -> FaultPlan:
    """One seeded random fault plan shaped to ``spec``.

    Strike times and window lengths scale with the workload horizon
    (``frames * stride_time``); targets are drawn from the nodes the
    spec actually places work on. Windows always revert inside the
    simulated run, so every fault has a recovery to assert.
    """
    rng = np.random.default_rng(seed)
    horizon = spec.frames * spec.stride_time
    kinds = KINDS_BY_SYSTEM[spec.system]
    events: List[FaultEvent] = []
    for _ in range(int(rng.integers(1, max_events + 1))):
        kind = kinds[int(rng.integers(len(kinds)))]
        at = float(rng.uniform(0.05, 0.6) * horizon)
        duration = float(rng.uniform(0.05, 0.25) * horizon)
        target = str(int(rng.integers(spec.nodes_required)))
        severity, rate = 1.0, 0.0
        if kind in ("ssd_degrade", "lustre_slowdown"):
            severity = 1.0 + float(rng.uniform(0.5, 9.0))
        elif kind == "torn_write":
            severity = float(rng.uniform(0.1, 0.9))
        elif kind == "stale_metadata":
            # DYAD reads it as a flag; Lustre as the stat lag in seconds.
            severity = float(rng.uniform(0.0, 0.2) * spec.stride_time)
        elif kind == "bit_corrupt":
            rate = float(rng.uniform(0.05, 0.4))
        if kind == "lustre_slowdown":
            target = ["", "mds", "oss0"][int(rng.integers(3))]
        events.append(FaultEvent(
            kind, at=at, target=target, duration=duration,
            severity=severity, rate=rate,
        ))
    # Generous horizon: every window reverts well inside it, and a run
    # that still cannot finish is a genuine recovery deadlock.
    return FaultPlan(events=tuple(events), max_time=100.0 * horizon + 60.0)


def _dyad_config_for(plan: FaultPlan) -> Optional[DyadConfig]:
    """A DYAD config whose retry budget outlasts the plan's longest outage.

    Without this, a long ``dyad_crash`` window exhausts the client's
    default retry cap and the run fails *diagnosed* instead of recovering
    — legal, but it would make most soak runs trivially short.
    """
    downtime = max((e.duration for e in plan.events), default=0.0)
    if downtime <= 0.0:
        return None
    from repro.experiments.resilience import _retry_budget

    base = DyadConfig()
    return DyadConfig(max_transfer_retries=max(
        base.max_transfer_retries, _retry_budget(base, downtime)
    ))


# ---------------------------------------------------------------------------
# execution + classification
# ---------------------------------------------------------------------------

#: Outcome classes, best to worst. ``ok`` completed with zero violations;
#: ``diagnosed`` failed with a typed, named error (acceptable — the run
#: told the truth about dying); ``violation`` lied about data;
#: ``crash`` died with an untyped error (a harness bug).
CLASSES = ("ok", "diagnosed", "violation", "crash")


@dataclass(frozen=True)
class ChaosOutcome:
    """Classification of one plan's run."""

    seed: int
    spec: WorkflowSpec
    plan: FaultPlan
    classification: str
    detail: str = ""
    violations: Tuple[str, ...] = ()

    @property
    def failed(self) -> bool:
        """True for the two unacceptable classes."""
        return self.classification in ("violation", "crash")


def execute_plan(
    spec: WorkflowSpec,
    plan: FaultPlan,
    seed: int = 0,
    invariants: Optional[InvariantConfig] = None,
    dyad_config: Optional[DyadConfig] = None,
    **system_configs,
) -> ChaosOutcome:
    """Run one plan through the hardened campaign runner and classify it."""
    from repro.experiments.parallel import RunTask, run_campaign

    invariants = invariants or InvariantConfig()
    if spec.system is System.DYAD:
        configs = dict(system_configs)
        configs["dyad_config"] = dyad_config or _dyad_config_for(plan)
    else:
        configs = system_configs
    task = RunTask(spec=spec, seed=seed, system_configs=configs,
                   fault_plan=plan, invariants=invariants)
    try:
        result = run_campaign([task])[0]
    except InvariantViolation as err:
        return ChaosOutcome(seed, spec, plan, "violation", str(err),
                            (str(err),))
    except (StallError, ReproError) as err:
        # The whole typed hierarchy: stalls, exhausted retries, refused
        # gets, storage errors. The run died loudly naming a cause.
        return ChaosOutcome(
            seed, spec, plan, "diagnosed", f"{type(err).__name__}: {err}"
        )
    except Exception as err:  # noqa: BLE001 - classification boundary
        return ChaosOutcome(
            seed, spec, plan, "crash", f"{type(err).__name__}: {err}"
        )
    if result.invariant_violations:
        return ChaosOutcome(
            seed, spec, plan, "violation",
            f"{len(result.invariant_violations)} violation(s) recorded",
            tuple(result.invariant_violations),
        )
    return ChaosOutcome(
        seed, spec, plan, "ok",
        f"makespan {result.makespan:.3f}s, "
        f"{result.system_stats.get('invariant_checks', 0.0):.0f} checks",
    )


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------

#: Floors the softening passes never cross (keeping every candidate a
#: valid plan: durations positive, torn fraction in (0, 1), rate in
#: (0, 1]).
_MIN_DURATION = 1e-3
_MIN_RATE = 0.01


def _soften(event: FaultEvent) -> Optional[FaultEvent]:
    """One step less severe, or ``None`` when already minimal."""
    if event.kind in ("ssd_degrade", "lustre_slowdown"):
        if event.severity <= 1.001:
            return None
        return dataclasses.replace(
            event, severity=1.0 + (event.severity - 1.0) / 2.0
        )
    if event.kind == "torn_write":
        # Less severe = closer to 1 (more of the declared bytes land).
        if event.severity >= 0.95:
            return None
        return dataclasses.replace(
            event, severity=(event.severity + 1.0) / 2.0
        )
    if event.kind == "bit_corrupt":
        if event.rate <= _MIN_RATE:
            return None
        return dataclasses.replace(event, rate=max(_MIN_RATE,
                                                   event.rate / 2.0))
    if event.kind == "stale_metadata" and event.severity > 0.0:
        softened = event.severity / 2.0
        return dataclasses.replace(
            event, severity=0.0 if softened < 1e-6 else softened
        )
    return None


def shrink(
    plan: FaultPlan,
    reproduce: Callable[[FaultPlan], bool],
    max_attempts: int = 200,
) -> FaultPlan:
    """Minimize ``plan`` while ``reproduce`` still returns True.

    Greedy delta debugging in three passes, iterated to a fixpoint:
    drop whole events, then halve window durations, then soften
    severities/rates one notch at a time. ``reproduce`` must be a pure
    function of the plan (same seed inside) or the result is undefined.
    ``max_attempts`` bounds the total number of reproduction runs.
    """
    if not reproduce(plan):
        raise ReproError(
            "shrink: the original plan does not reproduce the failure"
        )
    budget = [max_attempts]

    def attempt(candidate: FaultPlan) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        return reproduce(candidate)

    events = list(plan.events)

    def rebuild(evts: Sequence[FaultEvent]) -> FaultPlan:
        return dataclasses.replace(plan, events=tuple(evts))

    changed = True
    while changed and budget[0] > 0:
        changed = False
        # Pass 1: drop events (later windows first — they are the least
        # likely to be causal for an early violation).
        i = len(events) - 1
        while i >= 0 and len(events) > 1:
            candidate = events[:i] + events[i + 1:]
            if attempt(rebuild(candidate)):
                events = candidate
                changed = True
            i -= 1
        # Pass 2: narrow windows.
        for i, event in enumerate(events):
            while event.duration / 2.0 >= _MIN_DURATION:
                shorter = dataclasses.replace(
                    event, duration=event.duration / 2.0
                )
                if not attempt(rebuild(
                        events[:i] + [shorter] + events[i + 1:])):
                    break
                events[i] = event = shorter
                changed = True
        # Pass 3: soften severities/rates.
        for i, event in enumerate(events):
            while True:
                softer = _soften(event)
                if softer is None or not attempt(rebuild(
                        events[:i] + [softer] + events[i + 1:])):
                    break
                events[i] = event = softer
                changed = True
    return rebuild(events)


# ---------------------------------------------------------------------------
# plan (de)serialization
# ---------------------------------------------------------------------------


def save_plan(plan: FaultPlan, path: str) -> None:
    """Write a plan as JSON (the replay artifact the CI job uploads)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(plan.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_plan(path: str) -> FaultPlan:
    """Inverse of :func:`save_plan`; validates on construction."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise FaultPlanError(f"{path}: expected a JSON object, got "
                             f"{type(data).__name__}")
    return FaultPlan.from_dict(data)


# ---------------------------------------------------------------------------
# the soak
# ---------------------------------------------------------------------------


@dataclass
class ChaosReport:
    """Everything one soak observed."""

    base_seed: int
    outcomes: List[ChaosOutcome] = field(default_factory=list)
    #: path of the serialized shrunk repro for the first failure (if any)
    shrunk_path: Optional[str] = None
    shrunk_events: Optional[int] = None

    @property
    def counts(self) -> Dict[str, int]:
        """Outcome counts per classification."""
        out = {c: 0 for c in CLASSES}
        for outcome in self.outcomes:
            out[outcome.classification] += 1
        return out

    @property
    def failures(self) -> List[ChaosOutcome]:
        """Violations and crashes (the unacceptable classes)."""
        return [o for o in self.outcomes if o.failed]

    def render(self) -> str:
        """Textual soak summary."""
        counts = self.counts
        lines = [
            f"=== chaos soak: {len(self.outcomes)} plans "
            f"(base_seed={self.base_seed}) ===",
            "  " + "  ".join(f"{c}={counts[c]}" for c in CLASSES),
        ]
        for outcome in self.outcomes:
            lines.append(
                f"  seed={outcome.seed} {outcome.spec.system.value:6s} "
                f"{len(outcome.plan.events)} event(s) -> "
                f"{outcome.classification}: {outcome.detail}"
            )
        if self.failures:
            lines.append(f"FAILURES: {len(self.failures)}")
            for outcome in self.failures:
                for violation in outcome.violations:
                    lines.append(f"  {violation}")
            if self.shrunk_path:
                lines.append(
                    f"shrunk repro ({self.shrunk_events} event(s)) "
                    f"written to {self.shrunk_path}"
                )
        else:
            lines.append("all plans passed invariants or failed diagnosed")
        return "\n".join(lines)


def soak(
    plans: int = 20,
    base_seed: int = 0,
    frames: int = 8,
    max_events: int = 4,
    artifact_dir: Optional[str] = None,
    streaming: bool = False,
    topology: bool = False,
) -> ChaosReport:
    """Run ``plans`` seeded random fault plans across the workload grid.

    Every run has the invariant checker armed and fatal. On the first
    failure (violation or crash) the offending plan is shrunk against the
    same spec/seed and — when ``artifact_dir`` is given — serialized
    there as ``chaos-shrunk-plan.json`` for replay. The soak continues
    through the remaining plans either way so the report shows the full
    blast radius. ``streaming=True`` soaks the streaming workload grid
    instead (flow-control faults: leaked credits, lost wake-ups,
    backpressure deadlocks); ``topology=True`` soaks the non-pairwise
    grid (fan-out/fan-in/pool drain invariants under faults).
    """
    workloads = chaos_workloads(frames, streaming=streaming,
                                topology=topology)
    report = ChaosReport(base_seed=base_seed)
    for i in range(plans):
        seed = base_seed + i
        spec = workloads[i % len(workloads)]
        plan = random_plan(seed, spec, max_events=max_events)
        outcome = execute_plan(spec, plan, seed=seed)
        report.outcomes.append(outcome)
        if outcome.failed and report.shrunk_events is None:
            def _reproduce(candidate: FaultPlan,
                           _spec=spec, _seed=seed) -> bool:
                return execute_plan(_spec, candidate, seed=_seed).failed

            minimal = shrink(plan, _reproduce)
            report.shrunk_events = len(minimal.events)
            if artifact_dir is not None:
                os.makedirs(artifact_dir, exist_ok=True)
                path = os.path.join(artifact_dir, "chaos-shrunk-plan.json")
                save_plan(minimal, path)
                report.shrunk_path = path
    return report
