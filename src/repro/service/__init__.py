"""Campaign-as-a-service: a fault-tolerant async experiment server.

The :mod:`repro.service` package wraps the campaign runner
(:mod:`repro.experiments.parallel`) behind a long-running job-submission
API on a unix socket:

- :class:`~repro.service.server.ExperimentServer` — the asyncio server:
  admission control (:class:`~repro.service.admission.FairQueue`), load
  shedding (:class:`~repro.service.shedding.SheddingPolicy`),
  per-experiment-kind circuit breaking
  (:class:`~repro.service.breaker.CircuitBreaker`), a journal-backed
  job ledger (:class:`~repro.service.journal.Journal`) that survives
  SIGKILL, and a shared multi-tenant result store
  (:class:`~repro.service.store.SharedResultStore`).
- :class:`~repro.service.client.ServiceClient` — the asyncio client
  (plus a synchronous façade for the CLI).
- :func:`~repro.service.loadgen.run_load` — the synthetic-client chaos
  harness behind ``BENCH_service.json``.

``python -m repro.service --help`` lists the CLI surface; see
``docs/service.md`` for the API, tenancy model, degradation policy, and
resume semantics.
"""

from repro.service.admission import FairQueue
from repro.service.breaker import CircuitBreaker
from repro.service.client import RETRYABLE, ServiceClient, SyncServiceClient
from repro.service.jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
    JobSpec,
)
from repro.service.journal import (
    GroupCommitter,
    Journal,
    iter_events,
    replay_events,
)
from repro.service.loadgen import (
    build_job_pool,
    percentile,
    run_delivery,
    run_load,
)
from repro.service.server import ExperimentServer, ServerConfig
from repro.service.shedding import SheddingPolicy
from repro.service.store import (
    PayloadSegment,
    SharedResultStore,
    StoredResult,
)

__all__ = [
    "CircuitBreaker",
    "DONE",
    "ExperimentServer",
    "FAILED",
    "FairQueue",
    "GroupCommitter",
    "JobRecord",
    "JobSpec",
    "Journal",
    "PayloadSegment",
    "QUEUED",
    "RETRYABLE",
    "RUNNING",
    "ServerConfig",
    "ServiceClient",
    "SharedResultStore",
    "SheddingPolicy",
    "StoredResult",
    "SyncServiceClient",
    "build_job_pool",
    "iter_events",
    "percentile",
    "replay_events",
    "run_delivery",
    "run_load",
]
