"""Load shedding: graceful fidelity degradation under queue pressure.

When the dispatch queue backs up, the service trades accuracy for
throughput instead of latency for nothing: jobs marked ``degradable``
are downgraded from the ``exact`` tier to ``hybrid`` (queue depth ≥
``hybrid_at``) or all the way to ``fluid`` (depth ≥ ``fluid_at``) at
dispatch time. The fluid tiers (PR 6) agree with the exact tier to
~1e-3 relative makespan while dispatching far fewer kernel events, so a
shed job returns an answer of slightly lower fidelity rather than
timing out — and the downgrade is *recorded* in the job record, the
journal, and the returned result, never silent.

Decisions only ever downgrade (``exact → hybrid → fluid``); a job
already requesting a cheaper tier than the pressure level asks for is
left alone.
"""

from __future__ import annotations

from typing import Optional

from repro.service.jobs import JobSpec
from repro.sim.fluid import Fidelity

__all__ = ["SheddingPolicy"]


class SheddingPolicy:
    """Queue-depth-threshold fidelity downgrades."""

    def __init__(self, hybrid_at: int = 16, fluid_at: int = 48) -> None:
        if hybrid_at < 1 or fluid_at < hybrid_at:
            raise ValueError(
                f"need 1 <= hybrid_at <= fluid_at, got "
                f"{hybrid_at}/{fluid_at}"
            )
        self.hybrid_at = hybrid_at
        self.fluid_at = fluid_at
        self.shed = 0  # jobs downgraded (lifetime)

    def choose(self, depth: int, spec: JobSpec) -> Optional[str]:
        """Tier to downgrade to, or ``None`` to run as requested."""
        if not spec.degradable:
            return None
        if depth >= self.fluid_at:
            target = Fidelity.FLUID
        elif depth >= self.hybrid_at:
            target = Fidelity.HYBRID
        else:
            return None
        requested = Fidelity.coerce(spec.fidelity)
        if target.ordinal <= requested.ordinal:
            return None  # already at (or below) the pressure tier
        self.shed += 1
        return target.value
