"""Clients for the experiment server's JSON-lines unix-socket API.

:class:`ServiceClient` is the asyncio client the load harness and the
CLI build on. It is deliberately resilient: connection establishment
retries with capped exponential backoff (a restarting server is a
normal event, not an error), and :meth:`submit_resilient` re-submits
through rejections and connection loss until the job reaches a terminal
state — safe because submissions are idempotent on the server (dedup by
content address) and the journal makes accepted jobs durable.

:class:`SyncServiceClient` wraps it for synchronous callers (the CLI
subcommands) with one short-lived event loop per call.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Optional

from repro.errors import ServiceError

__all__ = ["ServiceClient", "SyncServiceClient"]

#: rejection reasons that mean "try again later", not "give up"
RETRYABLE = {"queue_full", "budget_exceeded", "circuit_open", "draining"}


class ServiceClient:
    """One connection to the server (open lazily, reconnect on demand)."""

    def __init__(self, socket_path: str, connect_timeout: float = 30.0,
                 connect_backoff: float = 0.05) -> None:
        self.socket_path = socket_path
        self.connect_timeout = connect_timeout
        self.connect_backoff = connect_backoff
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self.reconnects = 0

    async def _connect(self) -> None:
        deadline = time.monotonic() + self.connect_timeout
        backoff = self.connect_backoff
        while True:
            try:
                self._reader, self._writer = await asyncio.open_unix_connection(
                    self.socket_path, limit=4 * 1024 * 1024
                )
                return
            except (ConnectionError, FileNotFoundError, OSError):
                if time.monotonic() >= deadline:
                    raise ServiceError(
                        f"server at {self.socket_path} unreachable for "
                        f"{self.connect_timeout:.0f}s"
                    )
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, 1.0)

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip (connecting if needed)."""
        if self._writer is None or self._writer.is_closing():
            await self._connect()
        assert self._reader is not None and self._writer is not None
        self._writer.write(json.dumps(payload).encode() + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        return json.loads(line)

    # -- operations --------------------------------------------------------
    async def ping(self) -> bool:
        """Liveness probe; True when the server answers."""
        return bool((await self.request({"op": "ping"})).get("ok"))

    async def submit(self, job: Dict[str, Any],
                     wait: bool = True) -> Dict[str, Any]:
        """One submission attempt; returns the raw server response."""
        return await self.request({"op": "submit", "job": job, "wait": wait})

    async def submit_resilient(self, job: Dict[str, Any],
                               deadline: float = 120.0) -> Dict[str, Any]:
        """Submit until terminal, riding out rejections and restarts.

        Duplicate re-submissions after a connection drop are safe: an
        identical job coalesces onto the in-flight primary or hits the
        result store. Returns the terminal response; raises
        :class:`ServiceError` past the deadline. The ``retries`` field of
        the response is augmented with this client's resubmission count.
        """
        end = time.monotonic() + deadline
        resubmits = 0
        while True:
            try:
                response = await self.submit(job, wait=True)
            except (ConnectionError, ServiceError, asyncio.IncompleteReadError):
                self._drop()
                resubmits += 1
                if time.monotonic() >= end:
                    raise ServiceError("submission deadline exhausted "
                                       "(server unreachable)")
                await asyncio.sleep(self.connect_backoff)
                self.reconnects += 1
                continue
            if response.get("ok"):
                response["client_resubmits"] = resubmits
                return response
            if response.get("error") in RETRYABLE:
                resubmits += 1
                if time.monotonic() >= end:
                    raise ServiceError(
                        f"submission deadline exhausted (last rejection: "
                        f"{response.get('error')})"
                    )
                await asyncio.sleep(
                    min(float(response.get("retry_after", 0.5)),
                        max(end - time.monotonic(), 0.01), 2.0)
                )
                continue
            return response  # terminal failure (bad request, job failed)

    async def status(self, job_id: str) -> Dict[str, Any]:
        """Current record of ``job_id`` (state, fidelity, result fields)."""
        return await self.request({"op": "status", "job_id": job_id})

    async def stats(self) -> Dict[str, Any]:
        """Server counters, queue/breaker/store state, and latency tails."""
        return await self.request({"op": "stats"})

    async def drain(self) -> Dict[str, Any]:
        """Ask the server to finish in-flight work and stop."""
        return await self.request({"op": "drain"})

    def _drop(self) -> None:
        if self._writer is not None:
            self._writer.close()
        self._reader = self._writer = None

    async def close(self) -> None:
        """Close the connection (safe to call repeatedly)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        self._reader = self._writer = None


class SyncServiceClient:
    """Synchronous façade for CLI use: one event loop per call."""

    def __init__(self, socket_path: str, connect_timeout: float = 30.0) -> None:
        self.socket_path = socket_path
        self.connect_timeout = connect_timeout

    def _call(self, coro_factory):
        async def _run():
            client = ServiceClient(self.socket_path, self.connect_timeout)
            try:
                return await coro_factory(client)
            finally:
                await client.close()

        return asyncio.run(_run())

    def ping(self) -> bool:
        """Blocking :meth:`ServiceClient.ping`."""
        return self._call(lambda c: c.ping())

    def submit(self, job: Dict[str, Any], wait: bool = True) -> Dict[str, Any]:
        """Blocking :meth:`ServiceClient.submit`."""
        return self._call(lambda c: c.submit(job, wait=wait))

    def status(self, job_id: str) -> Dict[str, Any]:
        """Blocking :meth:`ServiceClient.status`."""
        return self._call(lambda c: c.status(job_id))

    def stats(self) -> Dict[str, Any]:
        """Blocking :meth:`ServiceClient.stats`."""
        return self._call(lambda c: c.stats())

    def drain(self) -> Dict[str, Any]:
        """Blocking :meth:`ServiceClient.drain`."""
        return self._call(lambda c: c.drain())
