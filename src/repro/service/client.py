"""Clients for the experiment server's JSON-lines unix-socket API.

:class:`ServiceClient` is the asyncio client the load harness and the
CLI build on. It is deliberately resilient: connection establishment
retries with capped exponential backoff (a restarting server is a
normal event, not an error), and :meth:`submit_resilient` re-submits
through rejections and connection loss until the job reaches a terminal
state — safe because submissions are idempotent on the server (dedup by
content address) and the journal makes accepted jobs durable.

Backoff follows the same schedule as :class:`~repro.dyad.config.
DyadConfig` retries — capped exponential with deterministic,
seed-derived jitter — so a herd of clients reconnecting to a restarted
server de-synchronizes instead of stampeding, and a fixed seed still
reproduces the exact same retry timeline run over run.

:class:`SyncServiceClient` wraps it for synchronous callers (the CLI
subcommands) with one short-lived event loop per call.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from typing import Any, Dict, Optional, Tuple

from repro.errors import ServiceError
from repro.experiments.persist import decode_result

__all__ = ["ServiceClient", "SyncServiceClient"]

#: rejection reasons that mean "try again later", not "give up"
RETRYABLE = {"queue_full", "budget_exceeded", "circuit_open", "draining"}


class ServiceClient:
    """One connection to the server (open lazily, reconnect on demand)."""

    def __init__(self, socket_path: str, connect_timeout: float = 30.0,
                 connect_backoff: float = 0.02,
                 backoff_cap: float = 0.1, backoff_jitter: float = 0.25,
                 seed: int = 0) -> None:
        self.socket_path = socket_path
        self.connect_timeout = connect_timeout
        self.connect_backoff = connect_backoff
        self.backoff_cap = backoff_cap
        self.backoff_jitter = backoff_jitter
        # deterministic jitter: a fixed seed reproduces the exact retry
        # timeline, but distinct seeds (one per client) spread the herd
        self._rng = random.Random(seed)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self.reconnects = 0

    def _backoff_delay(self, attempt: int) -> float:
        """DyadConfig-style retry schedule: ``min(base * 2^attempt, cap)``
        stretched by up to ``backoff_jitter`` from the seeded stream."""
        delay = min(self.connect_backoff * (2.0 ** attempt),
                    self.backoff_cap)
        if self.backoff_jitter > 0:
            delay *= 1.0 + self.backoff_jitter * self._rng.random()
        return delay

    async def _connect(self) -> None:
        deadline = time.monotonic() + self.connect_timeout
        attempt = 0
        while True:
            try:
                self._reader, self._writer = await asyncio.open_unix_connection(
                    self.socket_path, limit=4 * 1024 * 1024
                )
                return
            except (ConnectionError, FileNotFoundError, OSError):
                if time.monotonic() >= deadline:
                    raise ServiceError(
                        f"server at {self.socket_path} unreachable for "
                        f"{self.connect_timeout:.0f}s"
                    )
                await asyncio.sleep(self._backoff_delay(attempt))
                attempt += 1

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip (connecting if needed)."""
        if self._writer is None or self._writer.is_closing():
            await self._connect()
        assert self._reader is not None and self._writer is not None
        self._writer.write(json.dumps(payload).encode() + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        return json.loads(line)

    # -- operations --------------------------------------------------------
    async def ping(self) -> bool:
        """Liveness probe; True when the server answers."""
        return bool((await self.request({"op": "ping"})).get("ok"))

    async def submit(self, job: Dict[str, Any],
                     wait: bool = True) -> Dict[str, Any]:
        """One submission attempt; returns the raw server response."""
        return await self.request({"op": "submit", "job": job, "wait": wait})

    async def submit_resilient(self, job: Dict[str, Any],
                               deadline: float = 120.0) -> Dict[str, Any]:
        """Submit until terminal, riding out rejections and restarts.

        Duplicate re-submissions after a connection drop are safe: an
        identical job coalesces onto the in-flight primary or hits the
        result store. Returns the terminal response; raises
        :class:`ServiceError` past the deadline. The ``retries`` field of
        the response is augmented with this client's resubmission count.
        """
        end = time.monotonic() + deadline
        resubmits = 0
        drops = 0
        while True:
            try:
                response = await self.submit(job, wait=True)
            except (ConnectionError, ServiceError, asyncio.IncompleteReadError):
                self._drop()
                resubmits += 1
                drops += 1
                if time.monotonic() >= end:
                    raise ServiceError("submission deadline exhausted "
                                       "(server unreachable)")
                if drops > 1:
                    # first drop reconnects immediately (a restarting
                    # server is the common case; _connect has its own
                    # backoff while the socket is gone)
                    await asyncio.sleep(self._backoff_delay(drops - 2))
                self.reconnects += 1
                continue
            if response.get("ok"):
                response["client_resubmits"] = resubmits
                return response
            if response.get("error") in RETRYABLE:
                resubmits += 1
                if time.monotonic() >= end:
                    raise ServiceError(
                        f"submission deadline exhausted (last rejection: "
                        f"{response.get('error')})"
                    )
                pause = min(float(response.get("retry_after", 0.5)),
                            max(end - time.monotonic(), 0.01), 2.0)
                if self.backoff_jitter > 0:
                    # stagger retries of equally-hinted clients
                    pause *= 1.0 + self.backoff_jitter * self._rng.random()
                await asyncio.sleep(pause)
                continue
            return response  # terminal failure (bad request, job failed)

    async def status(self, job_id: str) -> Dict[str, Any]:
        """Current record of ``job_id`` (state, fidelity, result fields)."""
        return await self.request({"op": "status", "job_id": job_id})

    async def fetch_result(
        self, key: Optional[str] = None, job_id: Optional[str] = None,
    ) -> Tuple[Dict[str, Any], Optional[Any]]:
        """Fetch a stored result over the zero-copy delivery path.

        The server answers with a JSON header line followed by the raw
        CRC-framed result bytes streamed straight from its payload
        segment; this decodes them client-side. Returns ``(header,
        result)`` — ``result`` is ``None`` when the header is an error.
        """
        if self._writer is None or self._writer.is_closing():
            await self._connect()
        assert self._reader is not None and self._writer is not None
        request: Dict[str, Any] = {"op": "result"}
        if key is not None:
            request["key"] = key
        if job_id is not None:
            request["job_id"] = job_id
        self._writer.write(json.dumps(request).encode() + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        header = json.loads(line)
        if not header.get("ok"):
            return header, None
        blob = await self._reader.readexactly(int(header["length"]))
        return header, decode_result(blob)

    async def stats(self) -> Dict[str, Any]:
        """Server counters, queue/breaker/store state, and latency tails."""
        return await self.request({"op": "stats"})

    async def drain(self) -> Dict[str, Any]:
        """Ask the server to finish in-flight work and stop."""
        return await self.request({"op": "drain"})

    def _drop(self) -> None:
        if self._writer is not None:
            self._writer.close()
        self._reader = self._writer = None

    async def close(self) -> None:
        """Close the connection (safe to call repeatedly)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        self._reader = self._writer = None


class SyncServiceClient:
    """Synchronous façade for CLI use: one event loop per call."""

    def __init__(self, socket_path: str, connect_timeout: float = 30.0) -> None:
        self.socket_path = socket_path
        self.connect_timeout = connect_timeout

    def _call(self, coro_factory):
        async def _run():
            client = ServiceClient(self.socket_path, self.connect_timeout)
            try:
                return await coro_factory(client)
            finally:
                await client.close()

        return asyncio.run(_run())

    def ping(self) -> bool:
        """Blocking :meth:`ServiceClient.ping`."""
        return self._call(lambda c: c.ping())

    def submit(self, job: Dict[str, Any], wait: bool = True) -> Dict[str, Any]:
        """Blocking :meth:`ServiceClient.submit`."""
        return self._call(lambda c: c.submit(job, wait=wait))

    def status(self, job_id: str) -> Dict[str, Any]:
        """Blocking :meth:`ServiceClient.status`."""
        return self._call(lambda c: c.status(job_id))

    def fetch_result(self, key: Optional[str] = None,
                     job_id: Optional[str] = None):
        """Blocking :meth:`ServiceClient.fetch_result`."""
        return self._call(lambda c: c.fetch_result(key=key, job_id=job_id))

    def stats(self) -> Dict[str, Any]:
        """Blocking :meth:`ServiceClient.stats`."""
        return self._call(lambda c: c.stats())

    def drain(self) -> Dict[str, Any]:
        """Blocking :meth:`ServiceClient.drain`."""
        return self._call(lambda c: c.drain())
