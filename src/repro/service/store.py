"""Shared multi-tenant result store over the content-addressed cache.

The service promotes :class:`~repro.experiments.persist.ResultCache`
to a shared store: every tenant's results land in one sharded,
atomically-published, CRC-framed cache (the PR's hardened on-disk
format), keyed purely by the *content* of the computation — so two
tenants submitting identical configurations share one computation and
one entry. This wrapper adds the tenancy-aware accounting the serving
layer reports: per-tenant hit/miss/store counters and a cross-tenant
dedup counter (a hit on an entry first published by a *different*
tenant), plus the first-publisher map that powers it.

Tenant isolation here is accounting, not confidentiality: results are
pure functions of their inputs, so sharing entries leaks nothing a
tenant could not compute themselves.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from repro.experiments.persist import ResultCache
from repro.service.jobs import JobSpec

__all__ = ["SharedResultStore"]


class SharedResultStore:
    """Tenancy-aware façade over the content-addressed result cache."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.cache = ResultCache(root)
        self.hits: Dict[str, int] = defaultdict(int)
        self.misses: Dict[str, int] = defaultdict(int)
        self.stores: Dict[str, int] = defaultdict(int)
        self.cross_tenant_dedup = 0
        #: key -> tenant that first published it (this process's view)
        self._publisher: Dict[str, str] = {}

    @property
    def root(self) -> str:
        return self.cache.root

    def key_for(self, spec: JobSpec, fidelity: Optional[str] = None) -> str:
        """Content address of the job at its effective fidelity tier."""
        task = spec.run_task(fidelity)
        return self.cache.key(
            task.spec, task.seed, task.jitter_cv, task.system_configs,
            task.fault_plan, task.invariants, task.fidelity,
        )

    def load(self, key: str, tenant: str):
        """Cached result or ``None``; counts per-tenant and cross-tenant."""
        result = self.cache.load(key)
        if result is None:
            self.misses[tenant] += 1
            return None
        self.hits[tenant] += 1
        publisher = self._publisher.get(key)
        if publisher is not None and publisher != tenant:
            self.cross_tenant_dedup += 1
        return result

    def store(self, key: str, result, tenant: str) -> str:
        """Publish a result (atomic, last-writer-wins on equal bytes)."""
        path = self.cache.store(key, result)
        self.stores[tenant] += 1
        self._publisher.setdefault(key, tenant)
        return path

    def stats(self) -> Dict[str, object]:
        """Entry count plus per-tenant hit/store/dedup counters."""
        return {
            "root": self.root,
            "entries": len(self.cache),
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "stores": dict(self.stores),
            "cross_tenant_dedup": self.cross_tenant_dedup,
        }
