"""Shared multi-tenant result store over the content-addressed cache.

The service promotes :class:`~repro.experiments.persist.ResultCache`
to a shared store: every tenant's results land in one sharded,
atomically-published, CRC-framed cache, keyed purely by the *content*
of the computation — so two tenants submitting identical configurations
share one computation and one entry. This wrapper adds the tenancy
accounting the serving layer reports (per-tenant hit/miss/store
counters, cross-tenant dedup) plus the two structures that make the
read path cheap enough for the serving hot loop:

- an **in-memory LRU index** over keys (:attr:`lru_entries` deep).
  A hit resolves a result's location and metadata (fingerprint,
  makespan) with one ordered-dict lookup — no per-request ``stat``,
  file read, or unpickle. Metadata is decoded at most once per key.
- an **mmap-backed payload segment** (:class:`PayloadSegment`): an
  append-only side file holding the exact CRC-framed bytes the cache
  published. :meth:`SharedResultStore.payload` returns a ``memoryview``
  into the mapping, so the server can stream a stored result to a
  socket without copying or re-encoding it — the zero-copy delivery
  path. The segment is a rebuildable acceleration structure; the
  sharded cache directory remains the source of truth, so a torn
  segment tail (crash mid-append) is simply truncated at boot.

Tenant isolation here is accounting, not confidentiality: results are
pure functions of their inputs, so sharing entries leaks nothing a
tenant could not compute themselves.
"""

from __future__ import annotations

import mmap
import os
import struct
from collections import OrderedDict, defaultdict
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import ReproError
from repro.experiments.persist import ResultCache, decode_result, encode_result
from repro.service.jobs import JobSpec

__all__ = ["PayloadSegment", "SharedResultStore", "StoredResult"]

#: segment record framing: magic, 64-hex-char key, framed-blob length.
#: The blob itself carries the cache's magic/length/CRC frame, so the
#: segment header only needs enough to walk records and rebuild the
#: index at boot.
_SEG_MAGIC = b"RPSG"
_SEG_HEADER = struct.Struct("<4s64sQ")


class PayloadSegment:
    """Append-only mmap-readable log of framed result payloads."""

    def __init__(self, path: str, max_boot_bytes: int = 64 * 1024 * 1024
                 ) -> None:
        self.path = path
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        if os.path.exists(path) and os.path.getsize(path) > max_boot_bytes:
            # the segment is a cache of a cache — recreating it is always
            # safe, and cheaper than compacting in place
            os.unlink(path)
        self._fh = open(path, "ab")
        self._size = self._fh.tell()
        self._map: Optional[mmap.mmap] = None
        self._mapped = 0
        self.appended = 0

    @property
    def size(self) -> int:
        return self._size

    def scan(self) -> Iterator[Tuple[str, int, int]]:
        """Yield ``(key, offset, length)`` for every intact record.

        A torn tail (crash between header and blob) ends the scan and is
        truncated so subsequent appends start on a record boundary.
        """
        good_end = 0
        try:
            with open(self.path, "rb") as fh:
                while True:
                    header = fh.read(_SEG_HEADER.size)
                    if len(header) < _SEG_HEADER.size:
                        break
                    magic, key_raw, length = _SEG_HEADER.unpack(header)
                    if magic != _SEG_MAGIC:
                        break
                    offset = fh.tell()
                    blob = fh.read(length)
                    if len(blob) < length:
                        break
                    good_end = offset + length
                    yield key_raw.decode("ascii"), offset, length
        except OSError:
            return
        if good_end < self._size:
            self._fh.truncate(good_end)
            self._size = good_end

    def append(self, key: str, blob: bytes) -> Tuple[int, int]:
        """Append one framed blob; returns its ``(offset, length)``."""
        header = _SEG_HEADER.pack(
            _SEG_MAGIC, key.encode("ascii"), len(blob)
        )
        offset = self._size + _SEG_HEADER.size
        self._fh.write(header)
        self._fh.write(blob)
        # flush to the page cache so the mmap read path sees the bytes;
        # no fsync — durability belongs to the cache directory, not here
        self._fh.flush()
        self._size = offset + len(blob)
        self.appended += 1
        return offset, len(blob)

    def view(self, offset: int, length: int) -> memoryview:
        """Zero-copy window onto one record's framed bytes."""
        end = offset + length
        if end > self._size:
            raise ReproError(
                f"segment read past end ({end} > {self._size})"
            )
        if self._map is None or end > self._mapped:
            if self._map is not None:
                try:
                    self._map.close()
                except BufferError:
                    # a previously handed-out view is still referenced
                    # (e.g. buffered in a socket transport); drop our
                    # reference and let GC unmap when the view dies
                    pass
            # map through a read-only descriptor: the append handle is
            # write-only, which mmap refuses
            with open(self.path, "rb") as rfh:
                self._map = mmap.mmap(
                    rfh.fileno(), self._size, access=mmap.ACCESS_READ
                )
            self._mapped = self._size
        return memoryview(self._map)[offset:end]

    def close(self) -> None:
        """Release the mapping and the append handle."""
        if self._map is not None:
            try:
                self._map.close()
            except BufferError:
                pass  # outstanding views; GC unmaps when they die
            self._map = None
        self._fh.close()

    def stats(self) -> Dict[str, object]:
        """Segment telemetry: path, byte size, records appended."""
        return {"path": self.path, "bytes": self._size,
                "records": self.appended}


class _Entry:
    __slots__ = ("offset", "length", "fingerprint", "makespan")

    def __init__(self, offset: int, length: int,
                 fingerprint: Optional[str] = None,
                 makespan: Optional[float] = None) -> None:
        self.offset = offset
        self.length = length
        self.fingerprint = fingerprint
        self.makespan = makespan


class StoredResult:
    """A cached result resolved to metadata + zero-copy payload access."""

    __slots__ = ("key", "fingerprint", "makespan", "_store")

    def __init__(self, key: str, fingerprint: str, makespan: float,
                 store: "SharedResultStore") -> None:
        self.key = key
        self.fingerprint = fingerprint
        self.makespan = makespan
        self._store = store

    def payload(self) -> Optional[memoryview]:
        """Framed bytes of the result (the delivery wire format)."""
        return self._store.payload(self.key)

    def result(self):
        """Decoded result object (pays one unpickle; hot paths avoid it)."""
        view = self.payload()
        if view is None:
            return None
        return decode_result(view)


class SharedResultStore:
    """Tenancy-aware façade over the content-addressed result cache."""

    def __init__(self, root: Optional[str] = None,
                 lru_entries: int = 512) -> None:
        if lru_entries < 1:
            raise ReproError(
                f"lru_entries must be >= 1, got {lru_entries}"
            )
        self.cache = ResultCache(root)
        self.lru_entries = lru_entries
        self.segment = PayloadSegment(
            os.path.join(self.cache.root, "payload.seg")
        )
        self._index: "OrderedDict[str, _Entry]" = OrderedDict()
        for key, offset, length in self.segment.scan():
            # later records win (a re-appended key supersedes its older
            # copy); metadata refills lazily on first fetch
            self._index[key] = _Entry(offset, length)
            self._index.move_to_end(key)
        while len(self._index) > lru_entries:
            self._index.popitem(last=False)
        #: content-key memo: JobSpec construction is eagerly validating
        #: and hashing is pure, so (spec, tier) -> key never changes
        self._key_cache: Dict[Tuple[JobSpec, Optional[str]], str] = {}
        self.hits: Dict[str, int] = defaultdict(int)
        self.misses: Dict[str, int] = defaultdict(int)
        self.stores: Dict[str, int] = defaultdict(int)
        self.lru_hits = 0
        self.lru_misses = 0
        self.cross_tenant_dedup = 0
        #: key -> tenant that first published it (this process's view)
        self._publisher: Dict[str, str] = {}

    @property
    def root(self) -> str:
        return self.cache.root

    def key_for(self, spec: JobSpec, fidelity: Optional[str] = None) -> str:
        """Content address of the job at its effective fidelity tier."""
        memo = (spec, fidelity)
        key = self._key_cache.get(memo)
        if key is None:
            task = spec.run_task(fidelity)
            key = self.cache.key(
                task.spec, task.seed, task.jitter_cv, task.system_configs,
                task.fault_plan, task.invariants, task.fidelity,
            )
            if len(self._key_cache) >= 4096:
                self._key_cache.clear()
            self._key_cache[memo] = key
        return key

    # -- index internals ---------------------------------------------------
    def _insert(self, key: str, blob: bytes,
                fingerprint: Optional[str] = None,
                makespan: Optional[float] = None) -> _Entry:
        offset, length = self.segment.append(key, blob)
        entry = _Entry(offset, length, fingerprint, makespan)
        self._index[key] = entry
        self._index.move_to_end(key)
        while len(self._index) > self.lru_entries:
            self._index.popitem(last=False)
        return entry

    def _locate(self, key: str) -> Optional[_Entry]:
        """Index entry for ``key``, faulting from disk on an LRU miss."""
        entry = self._index.get(key)
        if entry is not None:
            self.lru_hits += 1
            self._index.move_to_end(key)
            return entry
        self.lru_misses += 1
        blob = self.cache.load_bytes(key)
        if blob is None:
            return None
        return self._insert(key, blob)

    def _decode(self, key: str, entry: _Entry):
        """Decode one indexed record (self-heals a bad segment copy)."""
        try:
            return entry, decode_result(self.segment.view(
                entry.offset, entry.length))
        except Exception:
            # segment record unusable (layout drift): drop it and retry
            # through the authoritative cache directory
            self._index.pop(key, None)
            blob = self.cache.load_bytes(key)
            if blob is None:
                return None, None
            return self._insert(key, blob), decode_result(blob)

    def _meta(self, key: str, entry: _Entry) -> Optional[_Entry]:
        """Fill fingerprint/makespan once per key (lazy decode)."""
        if entry.fingerprint is None:
            from repro.experiments.parallel import result_fingerprint

            entry, result = self._decode(key, entry)
            if entry is None:
                return None
            try:
                entry.fingerprint = result_fingerprint(result)
            except Exception:
                # not a WorkflowResult (foreign cache content): fetchers
                # get no fingerprint, but the payload stays servable
                entry.fingerprint = ""
            entry.makespan = getattr(result, "makespan", None)
        return entry

    # -- access ------------------------------------------------------------
    def fetch(self, key: str, tenant: str) -> Optional[StoredResult]:
        """Resolved result (metadata + payload access) or ``None``.

        This is the hot-path read: after the first touch of a key it is
        one LRU lookup — no disk I/O, no deserialization.
        """
        entry = self._locate(key)
        if entry is not None:
            entry = self._meta(key, entry)
        if entry is None:
            self.misses[tenant] += 1
            return None
        self.hits[tenant] += 1
        publisher = self._publisher.get(key)
        if publisher is not None and publisher != tenant:
            self.cross_tenant_dedup += 1
        return StoredResult(key, entry.fingerprint, entry.makespan, self)

    def load(self, key: str, tenant: str):
        """Decoded result or ``None`` (compat path; pays the unpickle)."""
        entry = self._locate(key)
        result = None
        if entry is not None:
            entry, result = self._decode(key, entry)
        if entry is None:
            self.misses[tenant] += 1
            return None
        self.hits[tenant] += 1
        publisher = self._publisher.get(key)
        if publisher is not None and publisher != tenant:
            self.cross_tenant_dedup += 1
        return result

    def payload(self, key: str) -> Optional[memoryview]:
        """Zero-copy framed bytes for ``key`` (no tenant accounting)."""
        entry = self._index.get(key)
        if entry is None:
            entry = self._locate(key)
            if entry is None:
                return None
        else:
            self._index.move_to_end(key)
        return self.segment.view(entry.offset, entry.length)

    def handle(self, key: str) -> Optional[Dict[str, object]]:
        """O(1) delivery handle for status polls (``None`` off-index)."""
        entry = self._index.get(key)
        if entry is None:
            return None
        return {"segment": self.segment.path, "offset": entry.offset,
                "length": entry.length}

    def store(self, key: str, result, tenant: str,
              fingerprint: Optional[str] = None) -> str:
        """Publish a result (atomic, last-writer-wins on equal bytes).

        Encodes once: the same framed bytes go to the cache directory
        (durable), the payload segment, and — untouched — to any client
        that later fetches the result.
        """
        if getattr(result, "tracer", None) is not None:
            raise ReproError("refusing to cache a traced run")
        if getattr(result, "metrics", None) is not None:
            raise ReproError("refusing to cache a metered run")
        blob = encode_result(result)
        path = self.cache.store_bytes(key, blob)
        self._insert(key, blob, fingerprint=fingerprint,
                     makespan=getattr(result, "makespan", None))
        self.stores[tenant] += 1
        self._publisher.setdefault(key, tenant)
        return path

    def close(self) -> None:
        """Close the payload segment (the cache directory needs nothing)."""
        self.segment.close()

    def stats(self) -> Dict[str, object]:
        """Entry count, per-tenant counters, LRU and segment telemetry."""
        return {
            "root": self.root,
            "entries": len(self.cache),
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "stores": dict(self.stores),
            "cross_tenant_dedup": self.cross_tenant_dedup,
            "lru_hits": self.lru_hits,
            "lru_misses": self.lru_misses,
            "lru_entries": len(self._index),
            "lru_capacity": self.lru_entries,
            "segment": self.segment.stats(),
        }
