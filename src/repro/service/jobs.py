"""Job model of the experiment service.

A :class:`JobSpec` is the wire-level description of one workflow
repetition a tenant wants computed: the workflow parameters, the seed,
the requested fidelity tier, and whether the service may degrade the
tier under load. It is a pure value — two byte-equal specs denote the
same computation, which is what makes cross-tenant dedup and
exactly-once resume sound: the service keys everything on the
content-addressed :class:`~repro.experiments.persist.ResultCache`
digest of the spec's :class:`~repro.experiments.parallel.RunTask`.

A :class:`JobRecord` is the server-side lifecycle of one accepted
submission: queued → running → done/failed, with shed/dedup/attempt
bookkeeping. Records round-trip through the journal as plain dicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import ServiceError
from repro.experiments.parallel import RunTask
from repro.faults.plan import FaultPlan
from repro.sim.fluid import Fidelity
from repro.workflow.spec import Placement, SyncMode, System, WorkflowSpec

__all__ = ["JobSpec", "JobRecord", "QUEUED", "RUNNING", "DONE", "FAILED"]

#: Lifecycle states. ``queued`` and ``running`` are both *non-terminal*:
#: a journal replay re-enqueues either (a job that was running when the
#: server died never finished — re-executing it is safe because the
#: computation is deterministic and the result store is content-addressed).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


@dataclass(frozen=True)
class JobSpec:
    """One tenant-submitted repetition request (a pure value)."""

    tenant: str
    system: str = "dyad"
    frames: int = 8
    pairs: int = 1
    stride: int = 880
    placement: Optional[str] = None
    sync_mode: str = "coarse"
    seed: int = 0
    jitter_cv: float = 0.0
    fidelity: str = "exact"
    #: whether load shedding may downgrade this job's tier
    degradable: bool = True
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if not self.tenant or not isinstance(self.tenant, str):
            raise ServiceError("job tenant must be a non-empty string")
        Fidelity.coerce(self.fidelity)  # validates the tier name
        self.workflow_spec()  # validates the workflow parameters eagerly

    @property
    def kind(self) -> str:
        """Circuit-breaker grouping: one breaker per system under test."""
        return self.system

    def workflow_spec(self) -> WorkflowSpec:
        """The validated :class:`WorkflowSpec` this job runs."""
        system = System(self.system)
        if self.placement is not None:
            placement = Placement(self.placement)
        elif system is System.LUSTRE:
            placement = Placement.SPLIT
        else:
            placement = Placement.SINGLE_NODE
        kwargs: Dict[str, Any] = {}
        if system is not System.DYAD:
            kwargs["sync_mode"] = SyncMode(self.sync_mode)
        return WorkflowSpec(
            system=system, frames=self.frames, pairs=self.pairs,
            stride=self.stride, placement=placement, **kwargs,
        )

    def run_task(self, fidelity: Optional[str] = None) -> RunTask:
        """The :class:`RunTask` executing this job (at ``fidelity`` if a
        load-shed downgraded the requested tier)."""
        return RunTask(
            spec=self.workflow_spec(), seed=self.seed,
            jitter_cv=self.jitter_cv, fault_plan=self.fault_plan,
            fidelity=Fidelity.coerce(fidelity or self.fidelity).value,
        )

    # -- wire format -------------------------------------------------------
    def to_wire(self) -> Dict[str, Any]:
        """JSON-compatible dict (the submit payload / journal form)."""
        payload: Dict[str, Any] = {
            "tenant": self.tenant, "system": self.system,
            "frames": self.frames, "pairs": self.pairs,
            "stride": self.stride, "placement": self.placement,
            "sync_mode": self.sync_mode, "seed": self.seed,
            "jitter_cv": self.jitter_cv, "fidelity": self.fidelity,
            "degradable": self.degradable,
        }
        if self.fault_plan is not None:
            payload["fault_plan"] = self.fault_plan.to_dict()
        return payload

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "JobSpec":
        """Inverse of :meth:`to_wire`; raises :class:`ServiceError` on a
        malformed payload instead of leaking a traceback to the socket."""
        if not isinstance(payload, dict):
            raise ServiceError(f"job payload must be an object, got "
                               f"{type(payload).__name__}")
        data = dict(payload)
        plan = data.pop("fault_plan", None)
        try:
            return cls(
                tenant=str(data.pop("tenant")),
                system=str(data.pop("system", "dyad")),
                frames=int(data.pop("frames", 8)),
                pairs=int(data.pop("pairs", 1)),
                stride=int(data.pop("stride", 880)),
                placement=data.pop("placement", None),
                sync_mode=str(data.pop("sync_mode", "coarse")),
                seed=int(data.pop("seed", 0)),
                jitter_cv=float(data.pop("jitter_cv", 0.0)),
                fidelity=str(data.pop("fidelity", "exact")),
                degradable=bool(data.pop("degradable", True)),
                fault_plan=FaultPlan.from_dict(plan) if plan else None,
            )
        except ServiceError:
            raise
        except Exception as exc:
            raise ServiceError(f"malformed job payload: {exc}") from exc

    def cost(self) -> float:
        """Fair-queueing cost proxy: simulated work scales with the frame
        count times the pair count (the campaign grid's two axes)."""
        return float(self.frames * self.pairs)


@dataclass
class JobRecord:
    """Server-side lifecycle of one accepted submission."""

    job_id: str
    spec: JobSpec
    state: str = QUEUED
    #: extra executions consumed by crash/timeout re-submissions
    attempts: int = 0
    #: tier the shedding policy downgraded to (None = ran as requested)
    shed_to: Optional[str] = None
    #: content address of the result actually computed (set at dispatch,
    #: when the effective fidelity is known; the requested-tier key until)
    key: Optional[str] = None
    #: job_id of the in-flight primary this duplicate coalesced onto
    dedup_of: Optional[str] = None
    error: Optional[str] = None
    fingerprint: Optional[str] = None
    makespan: Optional[float] = None
    #: wall-clock submit→terminal latency as measured by the server
    latency: Optional[float] = None
    #: "hit" (served from store), "computed", or "dedup" (follower)
    source: Optional[str] = None
    submitted_at: float = 0.0
    finished_at: float = 0.0
    followers: list = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, FAILED)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible status view (the ``status`` op's response)."""
        return {
            "job_id": self.job_id,
            "tenant": self.spec.tenant,
            "state": self.state,
            "fidelity": self.shed_to or self.spec.fidelity,
            "requested_fidelity": self.spec.fidelity,
            "shed_to": self.shed_to,
            "attempts": self.attempts,
            "key": self.key,
            "dedup_of": self.dedup_of,
            "error": self.error,
            "fingerprint": self.fingerprint,
            "makespan": self.makespan,
            "latency": self.latency,
            "source": self.source,
        }
