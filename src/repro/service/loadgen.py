"""Synthetic-client load harness for chaos-soaking the server.

Drives hundreds of concurrent asyncio clients — mixed tenants, a small
pool of distinct job contents (realistic campaigns repeat cells, which
is what exercises the dedup paths), and deliberate duplicate
submissions — against a running server, and reports the numbers the PR
promises in ``BENCH_service.json``: p50/p99 submit-to-result latency,
shed/dedup/retry counts, and zero-lost-job accounting (every submitted
job must reach a terminal state exactly once, even when an orchestrator
is SIGKILL-ing the server mid-run; clients ride restarts out via
:meth:`~repro.service.client.ServiceClient.submit_resilient`).

The harness is deliberately server-agnostic: it only speaks the wire
protocol, so the same load runs against an in-process server (unit
tests), a subprocess (kill-resume tests, CI smoke), or a long-lived
deployment.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Dict, List, Optional

from repro.service.client import ServiceClient

__all__ = ["build_job_pool", "run_load", "run_delivery", "percentile"]


def percentile(values: List[float], p: float) -> Optional[float]:
    """Nearest-rank percentile (None on empty input)."""
    if not values:
        return None
    ordered = sorted(values)
    return ordered[min(int(p * len(ordered)), len(ordered) - 1)]


def build_job_pool(
    tenants: List[str],
    distinct: int = 12,
    frames: int = 2,
    seed: int = 0,
    fidelity: str = "exact",
    degradable: bool = True,
) -> List[Dict[str, Any]]:
    """A pool of ``distinct`` small job payloads across the tenants.

    Systems and seeds cycle deterministically so the pool is identical
    across runs — the property the kill-resume fingerprint comparison
    depends on.
    """
    systems = ("dyad", "xfs", "lustre")
    pool = []
    for i in range(distinct):
        pool.append({
            "tenant": tenants[i % len(tenants)],
            "system": systems[i % len(systems)],
            "frames": frames,
            "pairs": 1,
            "seed": seed + i // len(systems),
            "fidelity": fidelity,
            "degradable": degradable,
        })
    return pool


async def run_load(
    socket_path: str,
    clients: int = 32,
    jobs_per_client: int = 4,
    tenants: Optional[List[str]] = None,
    duplicate_fraction: float = 0.5,
    distinct_jobs: int = 12,
    frames: int = 2,
    seed: int = 1234,
    fidelity: str = "exact",
    degradable: bool = True,
    deadline: float = 300.0,
) -> Dict[str, Any]:
    """Drive the mixed-tenant load; returns the accounting report.

    Each client submits ``jobs_per_client`` jobs drawn from the shared
    pool (``duplicate_fraction`` of draws intentionally repeat the
    previous draw, forcing in-flight dedup) and waits for each to reach
    a terminal state before the next — so ``clients`` is also the
    concurrent-connection count.
    """
    tenants = tenants or ["alice", "bob", "carol"]
    pool = build_job_pool(tenants, distinct=distinct_jobs, frames=frames,
                          seed=seed, fidelity=fidelity, degradable=degradable)
    rng = random.Random(seed)
    # pre-draw every client's job sequence so the submitted *set* is
    # deterministic even though completion interleaving is not
    sequences = []
    for c in range(clients):
        draws = []
        prev = None
        for _ in range(jobs_per_client):
            if prev is not None and rng.random() < duplicate_fraction:
                draws.append(prev)
            else:
                prev = rng.choice(pool)
                draws.append(prev)
        sequences.append(draws)

    latencies: List[float] = []
    outcomes = {"done": 0, "failed": 0, "lost": 0}
    sources = {"computed": 0, "hit": 0, "dedup": 0}
    fingerprints: Dict[str, set] = {}
    shed_seen = 0
    resubmits = 0
    reconnects = 0
    lock = asyncio.Lock()

    async def one_client(index: int, jobs: List[Dict[str, Any]]) -> None:
        nonlocal shed_seen, resubmits, reconnects
        # per-client seeds keep the jittered backoff schedule both
        # deterministic (same run, same timeline) and de-synchronized
        client = ServiceClient(socket_path, seed=seed + index)
        try:
            for job in jobs:
                started = time.monotonic()
                try:
                    response = await client.submit_resilient(
                        job, deadline=deadline
                    )
                except Exception:
                    async with lock:
                        outcomes["lost"] += 1
                    continue
                elapsed = time.monotonic() - started
                async with lock:
                    resubmits += response.get("client_resubmits", 0)
                    if response.get("state") == "done":
                        outcomes["done"] += 1
                        latencies.append(elapsed)
                        src = response.get("source")
                        if src in sources:
                            sources[src] += 1
                        if response.get("shed_to"):
                            shed_seen += 1
                        key = response.get("key")
                        if key is not None:
                            fingerprints.setdefault(key, set()).add(
                                response.get("fingerprint")
                            )
                    elif response.get("state") == "failed":
                        outcomes["failed"] += 1
                    else:
                        outcomes["lost"] += 1
            reconnects += client.reconnects
        finally:
            await client.close()

    started = time.monotonic()
    await asyncio.gather(
        *(one_client(i, seq) for i, seq in enumerate(sequences))
    )
    wall = time.monotonic() - started

    submitted = clients * jobs_per_client
    # exactly-once determinism check: every result of one content
    # address carries one fingerprint, no matter which tenant/attempt
    # computed it
    divergent = {k: sorted(v) for k, v in fingerprints.items()
                 if len(v) != 1}
    return {
        "clients": clients,
        "jobs_per_client": jobs_per_client,
        "submitted": submitted,
        "distinct_jobs": len(pool),
        "tenants": tenants,
        "wall_seconds": round(wall, 3),
        "throughput": round(submitted / wall, 1) if wall > 0 else None,
        "outcomes": outcomes,
        "sources": sources,
        "shed_observed": shed_seen,
        "client_resubmits": resubmits,
        "client_reconnects": reconnects,
        "latency_p50": percentile(latencies, 0.50),
        "latency_p99": percentile(latencies, 0.99),
        "latency_max": max(latencies) if latencies else None,
        "lost_jobs": outcomes["lost"],
        "divergent_fingerprints": divergent,
        # key -> fingerprint(s): the map a kill-resume run is compared
        # against its uninterrupted twin on
        "fingerprints": {k: sorted(v) for k, v in sorted(fingerprints.items())},
    }


async def run_delivery(
    socket_path: str,
    keys: List[str],
    clients: int = 8,
    fetches_per_client: int = 50,
) -> Dict[str, Any]:
    """Hammer the zero-copy ``result`` op; returns delivered fetches/s.

    Every fetch resolves a key through the server's LRU index and
    streams the framed bytes straight from the mmap segment — this
    phase measures the delivery path alone, with no job execution or
    admission in the way.
    """
    if not keys:
        return {"clients": clients, "fetches": 0, "delivered": 0,
                "wall_seconds": 0.0, "fetches_per_second": None}

    async def one_client(index: int) -> int:
        client = ServiceClient(socket_path, seed=index)
        delivered = 0
        try:
            for i in range(fetches_per_client):
                key = keys[(index + i) % len(keys)]
                header, result = await client.fetch_result(key=key)
                if header.get("ok") and result is not None:
                    delivered += 1
        finally:
            await client.close()
        return delivered

    started = time.monotonic()
    counts = await asyncio.gather(
        *(one_client(i) for i in range(clients))
    )
    wall = time.monotonic() - started
    delivered = sum(counts)
    return {
        "clients": clients,
        "fetches": clients * fetches_per_client,
        "delivered": delivered,
        "wall_seconds": round(wall, 3),
        "fetches_per_second": (round(delivered / wall, 1)
                               if wall > 0 else None),
    }
