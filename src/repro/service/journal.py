"""Append-only job journal: the server's crash-consistent memory.

Every state transition of every accepted job is appended as one JSON
line and made durable before the transition is acknowledged, so a
``kill -9``'d server can reconstruct exactly which jobs were accepted
and which reached a terminal state. Replay is deliberately forgiving
about the *last* line only: a crash mid-append leaves a torn trailing
record, which is dropped; a torn record anywhere else means external
corruption and raises :class:`~repro.errors.JournalError` (silently
skipping interior damage could turn "lost job" into "nobody noticed").

Durability is amortized with **group commit**: the synchronous
:meth:`Journal.append` (one write + one ``fsync`` per event) remains
for boot-time replay and tests, but the serving hot path goes through
:class:`GroupCommitter`, which batches every event enqueued during one
commit window into a single buffered write and a single ``fsync``
(:meth:`Journal.append_many`). The barrier contract is preserved: an
awaited :meth:`GroupCommitter.commit` future resolves only after the
event's batch is on stable storage, so a job is never acknowledged
before its record is durable — but a thousand concurrent submits now
share a handful of ``fsync`` calls instead of paying one each, the
same per-operation-amortization lesson the paper draws from DYAD's
batched RDMA pulls versus Lustre's per-file RPCs.

The journal is an event log, not a state store — replay folds events in
order (``submit`` → ``start``/``shed``/``retry`` → ``done``/``failed``)
into final :class:`~repro.service.jobs.JobRecord` states.
:func:`iter_events` streams records one line at a time, so replaying a
multi-gigabyte journal never materializes the whole file in memory.
Compaction (:meth:`Journal.compact`) rewrites the log as one ``submit``
(+ optional terminal) event per live job, via temp-file + atomic
rename; servers trigger it on a size threshold rather than every boot.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
from typing import Any, Dict, Iterable, Iterator, List, Optional, TextIO

from repro.errors import JournalError

__all__ = ["Journal", "GroupCommitter", "iter_events", "replay_events"]


def iter_events(path: str) -> Iterator[Dict[str, Any]]:
    """Stream a journal file's event dicts (crash-tolerant tail).

    Yields nothing when the journal does not exist (a fresh server).
    A truncated or torn *final* line — the signature of a crash between
    ``write`` and ``fsync`` — is dropped; malformed interior lines
    raise. The file is read line by line, so resuming a large journal
    costs O(1) memory instead of loading every event at once.
    """
    try:
        fh = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        return
    with fh:
        pending: Optional[Dict[str, Any]] = None
        bad: Optional[str] = None  # first undecodable line, held back
        for lineno, line in enumerate(fh, 1):
            line = line.rstrip("\n")
            if bad is not None:
                # a torn record is only forgivable at the very tail; any
                # real content after it means interior corruption
                if line.strip():
                    raise JournalError(f"{path}:{bad}: corrupt journal record")
                continue
            if not line:
                continue
            if pending is not None:
                yield pending
                pending = None
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                bad = str(lineno)
                continue
            if not isinstance(event, dict) or "ev" not in event:
                raise JournalError(f"{path}:{lineno}: not a journal record")
            pending = event
        if pending is not None:
            yield pending


def replay_events(path: str) -> List[Dict[str, Any]]:
    """Materialized :func:`iter_events` (kept for tests and small logs)."""
    return list(iter_events(path))


class Journal:
    """Durable append-only JSON-lines event log."""

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._fh: Optional[TextIO] = open(path, "a", encoding="utf-8")
        self.appended = 0
        #: fsync calls issued (append = 1 each; append_many = 1 per batch)
        self.syncs = 0

    def size(self) -> int:
        """Current on-disk size in bytes (0 when missing)."""
        try:
            return os.stat(self.path).st_size
        except OSError:
            return 0

    def append(self, event: Dict[str, Any]) -> None:
        """Durably record one event before the caller acknowledges it."""
        self.append_many((event,))

    def append_many(self, events: Iterable[Dict[str, Any]]) -> int:
        """Group commit: one buffered write + one ``fsync`` for the batch.

        Returns the number of events written. The batch is durable as a
        unit — either the caller's whole commit window is on stable
        storage or (on a crash mid-write) the torn tail is dropped at
        replay; no event in the middle of a batch can vanish alone.
        """
        if self._fh is None:
            raise JournalError("journal is closed")
        lines = [json.dumps(event, sort_keys=True) for event in events]
        if not lines:
            return 0
        self._fh.write("\n".join(lines) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.appended += len(lines)
        self.syncs += 1
        return len(lines)

    def compact(self, events: Iterable[Dict[str, Any]]) -> None:
        """Atomically replace the log with the given (folded) events."""
        parent = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(dir=parent, suffix=".journal.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                for event in events:
                    fh.write(json.dumps(event, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # reopen the append handle on the new inode
        if self._fh is not None:
            self._fh.close()
        self._fh = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        """Close the append handle (the journal file stays on disk)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class GroupCommitter:
    """Asyncio group-commit front end over a :class:`Journal`.

    Events arrive two ways:

    - :meth:`commit` — returns a future that resolves once the event is
      durable; the caller awaits it before acknowledging (the barrier).
    - :meth:`enqueue` — fire-and-forget for events whose loss is
      recoverable from other state (``done`` records re-derive from the
      content-addressed store; ``start``/``shed``/``retry`` only refine
      resume behaviour). They still commit in order with everything
      else, just without stalling the caller.

    The committer task collects everything enqueued within
    ``window`` seconds of the first pending event (bounded by
    ``max_batch``), writes the batch with one ``fsync`` off-loop
    (``run_in_executor``, so a slow disk never stalls the accept loop),
    and resolves the waiters. While one batch is being synced the next
    one accumulates — under load the fsync duration itself becomes the
    commit window, which is the classic group-commit behaviour.
    """

    def __init__(self, journal: Journal, window: float = 0.002,
                 max_batch: int = 512) -> None:
        if window < 0:
            raise JournalError(f"commit window must be >= 0, got {window}")
        if max_batch < 1:
            raise JournalError(f"max_batch must be >= 1, got {max_batch}")
        self.journal = journal
        self.window = window
        self.max_batch = max_batch
        self._pending: List[Dict[str, Any]] = []
        self._waiters: List[asyncio.Future] = []
        self._wake: Optional[asyncio.Event] = None
        self._task: Optional[asyncio.Task] = None
        self._closed = False
        #: group-commit telemetry: fsync batches and their sizes
        self.commits = 0
        self.committed = 0
        self.max_batch_seen = 0

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    def start(self) -> None:
        """Start the committer task on the running loop."""
        self._wake = asyncio.Event()
        self._closed = False
        self._task = asyncio.ensure_future(self._run())

    def enqueue(self, event: Dict[str, Any]) -> None:
        """Queue an event for the next commit window (no barrier)."""
        if self._closed or self._wake is None:
            # not serving (boot replay / after stop): stay durable the
            # slow way rather than dropping the event
            self.journal.append(event)
            return
        self._pending.append(event)
        self._wake.set()

    def commit(self, event: Dict[str, Any]) -> "asyncio.Future[None]":
        """Queue an event and return a future resolved when durable."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        if self._closed or self._wake is None:
            try:
                self.journal.append(event)
            except Exception as exc:  # pragma: no cover - disk failure
                future.set_exception(exc)
            else:
                future.set_result(None)
            return future
        self._pending.append(event)
        self._waiters.append(future)
        self._wake.set()
        return future

    def commit_batch(self, events: List[Dict[str, Any]]
                     ) -> "asyncio.Future[None]":
        """Queue several events under one barrier future."""
        future: asyncio.Future
        if not events:
            future = asyncio.get_running_loop().create_future()
            future.set_result(None)
            return future
        for event in events[:-1]:
            self.enqueue(event)
        return self.commit(events[-1])

    async def flush(self) -> None:
        """Wait until everything currently pending is durable."""
        if not self._pending or not self.running:
            return
        await self.commit({"ev": "flush"})

    async def stop(self) -> None:
        """Drain pending events, then stop the committer task."""
        if self._task is None:
            return
        self._closed = True
        assert self._wake is not None
        self._wake.set()
        await self._task
        self._task = None
        # anything enqueued after the closing batch was taken
        if self._pending:
            self.journal.append_many(self._pending)
            self._pending.clear()
        for waiter in self._waiters:
            if not waiter.done():
                waiter.set_result(None)
        self._waiters.clear()

    async def _run(self) -> None:
        assert self._wake is not None
        loop = asyncio.get_running_loop()
        while True:
            if not self._pending:
                if self._closed:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            if self.window > 0 and len(self._pending) < self.max_batch:
                # latency-bounded gather: let concurrent submits join
                # this window before paying the fsync
                await asyncio.sleep(self.window)
            batch = self._pending[: self.max_batch]
            del self._pending[: self.max_batch]
            waiters, self._waiters = self._waiters, []
            try:
                await loop.run_in_executor(
                    None, self.journal.append_many, batch
                )
            except Exception as exc:
                for waiter in waiters:
                    if not waiter.done():
                        waiter.set_exception(exc)
            else:
                self.commits += 1
                self.committed += len(batch)
                if len(batch) > self.max_batch_seen:
                    self.max_batch_seen = len(batch)
                for waiter in waiters:
                    if not waiter.done():
                        waiter.set_result(None)

    def stats(self) -> Dict[str, Any]:
        """Group-commit telemetry (``service.commit_window`` metrics)."""
        return {
            "window": self.window,
            "commits": self.commits,
            "events": self.committed,
            "avg_events_per_sync": (
                round(self.committed / self.commits, 2) if self.commits
                else None
            ),
            "max_events_per_sync": self.max_batch_seen,
        }
