"""Append-only job journal: the server's crash-consistent memory.

Every state transition of every accepted job is appended as one JSON
line and flushed + fsync'd before the transition is acknowledged, so a
``kill -9``'d server can reconstruct exactly which jobs were accepted
and which reached a terminal state. Replay is deliberately forgiving
about the *last* line only: a crash mid-append leaves a torn trailing
record, which is dropped; a torn record anywhere else means external
corruption and raises :class:`~repro.errors.JournalError` (silently
skipping interior damage could turn "lost job" into "nobody noticed").

The journal is an event log, not a state store — replay folds events in
order (``submit`` → ``start``/``shed``/``retry`` → ``done``/``failed``)
into final :class:`~repro.service.jobs.JobRecord` states. Compaction
(:meth:`Journal.compact`) rewrites the log as one ``submit`` (+ optional
terminal) event per live job, via temp-file + atomic rename, so a
long-running server's journal stays proportional to its job count
rather than its event count.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Iterable, List, Optional, TextIO

from repro.errors import JournalError

__all__ = ["Journal", "replay_events"]


def replay_events(path: str) -> List[Dict[str, Any]]:
    """Parse a journal file into its event dicts (crash-tolerant tail).

    Returns ``[]`` when the journal does not exist (a fresh server).
    A truncated or torn *final* line — the signature of a crash between
    ``write`` and ``fsync`` — is dropped; malformed interior lines raise.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
    except FileNotFoundError:
        return []
    events: List[Dict[str, Any]] = []
    # the file ends with "\n" normally, so a well-formed journal yields a
    # trailing empty string; anything non-empty there is a torn append
    body, tail = lines[:-1], lines[-1]
    for lineno, line in enumerate(body, 1):
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(body) and not tail:
                break  # torn final record (crash mid-append): drop it
            raise JournalError(
                f"{path}:{lineno}: corrupt journal record: {exc}"
            ) from exc
        if not isinstance(event, dict) or "ev" not in event:
            raise JournalError(f"{path}:{lineno}: not a journal record")
        events.append(event)
    if tail:
        try:
            event = json.loads(tail)
        except json.JSONDecodeError:
            pass  # torn final record without newline: drop it
        else:
            if isinstance(event, dict) and "ev" in event:
                events.append(event)
    return events


class Journal:
    """Durable append-only JSON-lines event log."""

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._fh: Optional[TextIO] = open(path, "a", encoding="utf-8")
        self.appended = 0

    def append(self, event: Dict[str, Any]) -> None:
        """Durably record one event before the caller acknowledges it."""
        if self._fh is None:
            raise JournalError("journal is closed")
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.appended += 1

    def compact(self, events: Iterable[Dict[str, Any]]) -> None:
        """Atomically replace the log with the given (folded) events."""
        parent = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(dir=parent, suffix=".journal.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                for event in events:
                    fh.write(json.dumps(event, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # reopen the append handle on the new inode
        if self._fh is not None:
            self._fh.close()
        self._fh = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        """Close the append handle (the journal file stays on disk)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
