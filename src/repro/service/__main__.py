"""CLI for the experiment service: ``python -m repro.service <cmd>``.

- ``serve`` — run a server on a unix socket (SIGTERM drains cleanly).
- ``submit`` / ``status`` / ``result`` / ``stats`` / ``drain`` /
  ``ping`` — thin clients for one-off operations against a running
  server (``result`` fetches stored bytes over the zero-copy path and
  decodes them client-side).
- ``bench`` — boot a private server, drive the synthetic-client load
  harness against it, and write ``BENCH_service.json``.
- ``smoke`` — the CI chaos gate: like ``bench``, but additionally
  SIGKILLs a worker (via the campaign runner's injected-fault hook) and
  SIGKILLs + restarts the *server* mid-run, then asserts zero lost
  jobs, zero failed jobs, consistent fingerprints, and observed
  crash-retry activity. Exit status is the assertion result.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

from repro.service.client import ServiceClient, SyncServiceClient
from repro.service.loadgen import run_delivery, run_load

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="fault-tolerant campaign-as-a-service experiment server",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a server (SIGTERM drains)")
    serve.add_argument("--socket", required=True)
    serve.add_argument("--journal", required=True)
    serve.add_argument("--cache-dir", default=None)
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--queue-depth", type=int, default=64)
    serve.add_argument("--tenant-budget", type=int, default=16)
    serve.add_argument("--shed-hybrid-depth", type=int, default=16)
    serve.add_argument("--shed-fluid-depth", type=int, default=48)
    serve.add_argument("--breaker-threshold", type=int, default=3)
    serve.add_argument("--breaker-cooldown", type=float, default=30.0)
    serve.add_argument("--task-timeout", type=float, default=None)
    serve.add_argument("--max-retries", type=int, default=None)
    serve.add_argument("--inline", action="store_true",
                       help="run jobs on threads (no crash isolation)")
    serve.add_argument("--commit-window", type=float, default=0.002,
                       help="group-commit gather window in seconds "
                            "(0 syncs every batch immediately)")
    serve.add_argument("--commit-max-batch", type=int, default=512)
    serve.add_argument("--compact-min-bytes", type=int, default=1 << 20,
                       help="boot-time journal compaction threshold")
    serve.add_argument("--lru-entries", type=int, default=512,
                       help="result-store LRU index capacity")
    serve.add_argument("--fuse-small-jobs", type=int, default=4,
                       help="fuse up to N small degradable jobs per "
                            "worker round trip (1 disables)")
    serve.add_argument("--fuse-max-cost", type=int, default=16)
    serve.add_argument("--backlog", type=int, default=512,
                       help="unix-socket listen backlog")
    serve.add_argument("--metrics-path", default=None,
                       help="write the perf-metrics timeline here at "
                            "shutdown")

    submit = sub.add_parser("submit", help="submit one job and wait")
    submit.add_argument("--socket", required=True)
    submit.add_argument("--tenant", default="cli")
    submit.add_argument("--system", default="dyad",
                        choices=("dyad", "xfs", "lustre"))
    submit.add_argument("--frames", type=int, default=8)
    submit.add_argument("--pairs", type=int, default=1)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--jitter-cv", type=float, default=0.0)
    submit.add_argument("--fidelity", default="exact",
                        choices=("exact", "hybrid", "fluid"))
    submit.add_argument("--not-degradable", action="store_true")
    submit.add_argument("--no-wait", action="store_true")

    for name, help_text in (
        ("status", "query one job"), ("stats", "server counters"),
        ("drain", "drain and stop the server"), ("ping", "liveness probe"),
        ("result", "fetch a stored result over the zero-copy path"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--socket", required=True)
        if name == "status":
            cmd.add_argument("--job-id", required=True)
        elif name == "result":
            cmd.add_argument("--job-id", help="fetch by job id")
            cmd.add_argument("--key", help="fetch by store key")

    for name, help_text in (
        ("bench", "boot a server, drive load, write BENCH_service.json"),
        ("smoke", "bench + worker-kill + server kill-restart assertions"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--clients", type=int, default=200)
        cmd.add_argument("--jobs-per-client", type=int, default=2)
        cmd.add_argument("--distinct-jobs", type=int, default=12)
        cmd.add_argument("--frames", type=int, default=2)
        cmd.add_argument("--workers", type=int, default=2)
        cmd.add_argument("--seed", type=int, default=1234)
        cmd.add_argument("--shed-hybrid-depth", type=int, default=8)
        cmd.add_argument("--kill-after", type=float, default=10.0,
                         help="max seconds to wait for in-flight activity "
                              "before SIGKILLing the server (smoke only)")
        cmd.add_argument("--commit-window", type=float, default=0.002)
        cmd.add_argument("--fuse-small-jobs", type=int, default=4)
        cmd.add_argument("--sustained-jobs-per-client", type=int, default=25,
                         help="jobs per client in the warm sustained-"
                              "throughput phase (0 skips the phase)")
        cmd.add_argument("--delivery-fetches", type=int, default=50,
                         help="result fetches per client in the zero-copy "
                              "delivery phase (0 skips the phase)")
        cmd.add_argument("--output", default="BENCH_service.json")
    return parser


def _serve(args: argparse.Namespace) -> int:
    from repro.service.server import ExperimentServer, ServerConfig

    config = ServerConfig(
        socket_path=args.socket, journal_path=args.journal,
        cache_dir=args.cache_dir, workers=args.workers,
        queue_depth=args.queue_depth, tenant_budget=args.tenant_budget,
        shed_hybrid_depth=args.shed_hybrid_depth,
        shed_fluid_depth=args.shed_fluid_depth,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        task_timeout=args.task_timeout, max_retries=args.max_retries,
        inline=args.inline,
        commit_window=args.commit_window,
        commit_max_batch=args.commit_max_batch,
        compact_min_bytes=args.compact_min_bytes,
        lru_entries=args.lru_entries,
        fuse_small_jobs=args.fuse_small_jobs,
        fuse_max_cost=args.fuse_max_cost,
        backlog=args.backlog,
        metrics_path=args.metrics_path,
    )

    async def _run() -> None:
        server = ExperimentServer(config)
        await server.start(handle_signals=True)
        print(f"serving on {config.socket_path}", flush=True)
        await server.serve_forever()

    asyncio.run(_run())
    return 0


def _client_command(args: argparse.Namespace) -> int:
    client = SyncServiceClient(args.socket, connect_timeout=10.0)
    if args.command == "submit":
        response = client.submit({
            "tenant": args.tenant, "system": args.system,
            "frames": args.frames, "pairs": args.pairs, "seed": args.seed,
            "jitter_cv": args.jitter_cv, "fidelity": args.fidelity,
            "degradable": not args.not_degradable,
        }, wait=not args.no_wait)
    elif args.command == "status":
        response = client.status(args.job_id)
    elif args.command == "result":
        if not (args.key or args.job_id):
            print("one of --key / --job-id is required", file=sys.stderr)
            return 2
        header, result = client.fetch_result(key=args.key, job_id=args.job_id)
        response = dict(header)
        if result is not None:
            response["makespan"] = getattr(result, "makespan", None)
    elif args.command == "stats":
        response = client.stats()
    elif args.command == "drain":
        response = client.drain()
    else:
        response = {"ok": client.ping()}
    print(json.dumps(response, indent=1, sort_keys=True))
    return 0 if response.get("ok") else 1


def server_command(socket_path: str, journal_path: str, cache_dir: str,
                   workers: int = 2, shed_hybrid_depth: int = 8,
                   commit_window: float = 0.002,
                   fuse_small_jobs: int = 4) -> List[str]:
    """The ``serve`` argv the orchestrated scenarios launch."""
    return [
        sys.executable, "-m", "repro.service", "serve",
        "--socket", socket_path, "--journal", journal_path,
        "--cache-dir", cache_dir, "--workers", str(workers),
        "--shed-hybrid-depth", str(shed_hybrid_depth),
        # keep the policy invariant hybrid_at <= fluid_at intact when a
        # caller pushes the hybrid threshold sky-high to disable shedding
        "--shed-fluid-depth", str(max(48, shed_hybrid_depth)),
        "--commit-window", str(commit_window),
        "--fuse-small-jobs", str(fuse_small_jobs),
    ]


def _spawn_server(cmd: List[str], env: Dict[str, str]) -> subprocess.Popen:
    return subprocess.Popen(
        cmd, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )


def _journal_has_retry(path: str) -> bool:
    try:
        with open(path, "rb") as fh:
            return b'"ev": "retry"' in fh.read()
    except OSError:
        return False


async def _orchestrate(args: argparse.Namespace, chaos: bool) -> Dict[str, Any]:
    """Boot a private server, drive the load, optionally kill mid-run."""
    workdir = tempfile.mkdtemp(prefix="repro-svc-")
    socket_path = os.path.join(workdir, "svc.sock")
    journal_path = os.path.join(workdir, "journal.jsonl")
    cache_dir = os.path.join(workdir, "cache")
    fault_dir = os.path.join(workdir, "faults")
    os.makedirs(fault_dir, exist_ok=True)

    env = dict(os.environ)
    env["REPRO_JOBS_OVERSUBSCRIBE"] = "1"
    if chaos:
        # one worker of the first seed's jobs hard-exits mid-task, once —
        # the injected-fault hook shared with the campaign runner
        env["REPRO_WORKER_FAULT_DIR"] = fault_dir
        env["REPRO_WORKER_CRASH_SEEDS"] = str(args.seed)

    cmd = server_command(socket_path, journal_path, cache_dir,
                         workers=args.workers,
                         shed_hybrid_depth=args.shed_hybrid_depth,
                         commit_window=args.commit_window,
                         fuse_small_jobs=args.fuse_small_jobs)
    server = _spawn_server(cmd, env)
    kills = 0
    try:
        load = asyncio.ensure_future(run_load(
            socket_path, clients=args.clients,
            jobs_per_client=args.jobs_per_client,
            distinct_jobs=args.distinct_jobs, frames=args.frames,
            seed=args.seed,
        ))
        if chaos:
            # sequence the chaos deterministically: wait until the journal
            # proves the worker crash was detected and retried, *then*
            # SIGKILL the server — killing on a fixed delay races the two
            # faults against each other and the load's completion
            deadline = time.monotonic() + args.kill_after
            while not load.done() and time.monotonic() < deadline:
                if _journal_has_retry(journal_path):
                    break
                await asyncio.sleep(0.02)
            if not load.done():
                server.kill()  # SIGKILL: no drain, no journal flush
                server.wait()
                kills = 1
                server = _spawn_server(cmd, env)
        report = await load
        # warm sustained phase: the pool is now fully cached, so this
        # measures the pure serving hot path (admission + group commit +
        # LRU store hits) without job execution in the way
        sustained = None
        if args.sustained_jobs_per_client > 0:
            sustained = await run_load(
                socket_path, clients=args.clients,
                jobs_per_client=args.sustained_jobs_per_client,
                distinct_jobs=args.distinct_jobs, frames=args.frames,
                seed=args.seed,
            )
            sustained.pop("fingerprints", None)  # phase 1's is canonical
        # zero-copy delivery phase: stream stored results straight from
        # the server's mmap segment
        delivery = None
        if args.delivery_fetches > 0:
            keys = sorted(report.get("fingerprints", {}))
            delivery = await run_delivery(
                socket_path, keys, clients=min(args.clients, 8),
                fetches_per_client=args.delivery_fetches,
            )
        stats_client = ServiceClient(socket_path, connect_timeout=30.0)
        try:
            stats = await stats_client.stats()
        finally:
            await stats_client.close()
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait()
    report["server_kills"] = kills
    report["sustained"] = sustained
    report["delivery"] = delivery
    report["server_stats"] = {
        k: stats.get(k) for k in ("counters", "queue", "breaker", "store",
                                  "dispatch", "admission_batches", "journal",
                                  "latency_p50", "latency_p99", "pending")
    }
    return report


def _check(report: Dict[str, Any], chaos: bool) -> List[str]:
    """The smoke assertions; returns failure messages (empty = pass)."""
    failures = []
    if report["lost_jobs"] != 0:
        failures.append(f"lost jobs: {report['lost_jobs']}")
    if report["outcomes"]["failed"] != 0:
        failures.append(f"failed jobs: {report['outcomes']['failed']}")
    if report["outcomes"]["done"] != report["submitted"]:
        failures.append(
            f"exactly-once violated: {report['outcomes']['done']} done "
            f"of {report['submitted']} submitted"
        )
    if report["divergent_fingerprints"]:
        failures.append(
            f"fingerprint divergence: {report['divergent_fingerprints']}"
        )
    sustained = report.get("sustained")
    if sustained is not None:
        if sustained["lost_jobs"] != 0:
            failures.append(
                f"sustained phase lost jobs: {sustained['lost_jobs']}"
            )
        if sustained["outcomes"]["done"] != sustained["submitted"]:
            failures.append(
                f"sustained phase exactly-once violated: "
                f"{sustained['outcomes']['done']} done of "
                f"{sustained['submitted']} submitted"
            )
    delivery = report.get("delivery")
    if delivery is not None and delivery["delivered"] != delivery["fetches"]:
        failures.append(
            f"delivery phase dropped fetches: {delivery['delivered']} "
            f"of {delivery['fetches']}"
        )
    if chaos:
        counters = report["server_stats"]["counters"]
        if counters.get("retries", 0) < 1:
            failures.append("worker crash was never retried "
                            "(chaos hook did not fire?)")
        if report["server_kills"] != 1:
            failures.append("server was never killed mid-run "
                            "(load finished too early; raise --clients "
                            "or lower --kill-after)")
    return failures


def _bench(args: argparse.Namespace, chaos: bool) -> int:
    report = asyncio.run(_orchestrate(args, chaos=chaos))
    failures = _check(report, chaos=chaos)
    payload = {
        "schema": 2,
        "mode": "smoke" if chaos else "bench",
        "cpu_count": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "failures": failures,
        **report,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")
    sustained = report.get("sustained") or {}
    delivery = report.get("delivery") or {}
    print(json.dumps({
        "submitted": report["submitted"],
        "done": report["outcomes"]["done"],
        "lost": report["lost_jobs"],
        "throughput": report.get("throughput"),
        "latency_p50": report["latency_p50"],
        "latency_p99": report["latency_p99"],
        "sustained_throughput": sustained.get("throughput"),
        "delivery_fetches_per_second": delivery.get("fetches_per_second"),
        "shed": report["server_stats"]["counters"].get("shed"),
        "dedup_inflight":
            report["server_stats"]["counters"].get("dedup_inflight"),
        "retries": report["server_stats"]["counters"].get("retries"),
        "journal_syncs":
            report["server_stats"].get("journal", {}).get("syncs"),
        "server_kills": report["server_kills"],
    }, indent=1))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _serve(args)
    if args.command in ("submit", "status", "result", "stats", "drain",
                        "ping"):
        return _client_command(args)
    if args.command == "bench":
        return _bench(args, chaos=False)
    if args.command == "smoke":
        return _bench(args, chaos=True)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
