"""Per-experiment-kind circuit breaker.

After ``threshold`` consecutive failures of one kind (one system under
test), the breaker *opens*: submissions of that kind are rejected with
``circuit_open`` and the remaining cooldown as the ``Retry-After`` hint,
so a poisoned configuration (a fault plan that reliably stalls, a spec
that reliably crashes its workers) stops consuming worker slots and
retry budget. When the cooldown elapses the breaker goes *half-open*:
exactly one probe job is admitted, and its outcome closes the breaker
(success) or re-opens it for another cooldown (failure).

The clock is injectable so the state machine is unit-testable without
sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class _Kind:
    __slots__ = ("state", "failures", "opened_at", "probing", "trips")

    def __init__(self) -> None:
        self.state = CLOSED
        self.failures = 0       # consecutive failures
        self.opened_at = 0.0
        self.probing = False    # a half-open probe is in flight
        self.trips = 0          # lifetime closed->open transitions


class CircuitBreaker:
    """Consecutive-failure breaker, one independent state per kind."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be positive, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock or time.monotonic
        self._kinds: Dict[str, _Kind] = {}

    def _kind(self, kind: str) -> _Kind:
        entry = self._kinds.get(kind)
        if entry is None:
            entry = self._kinds[kind] = _Kind()
        return entry

    def check(self, kind: str) -> Tuple[bool, float]:
        """(admit?, retry_after). Transitions open→half-open lazily."""
        entry = self._kind(kind)
        if entry.state == CLOSED:
            return True, 0.0
        elapsed = self._clock() - entry.opened_at
        if entry.state == OPEN and elapsed >= self.cooldown:
            entry.state = HALF_OPEN
            entry.probing = False
        if entry.state == HALF_OPEN:
            if entry.probing:
                return False, self.cooldown  # a probe is already out
            entry.probing = True
            return True, 0.0
        return False, max(self.cooldown - elapsed, 0.0)

    def record_success(self, kind: str) -> None:
        """A job of ``kind`` completed: reset failures, close the circuit."""
        entry = self._kind(kind)
        entry.failures = 0
        entry.probing = False
        entry.state = CLOSED

    def record_failure(self, kind: str) -> None:
        """A job of ``kind`` failed; opens the circuit at the threshold."""
        entry = self._kind(kind)
        entry.failures += 1
        if entry.state == HALF_OPEN or entry.failures >= self.threshold:
            if entry.state != OPEN:
                entry.trips += 1
            entry.state = OPEN
            entry.opened_at = self._clock()
            entry.probing = False

    def state(self, kind: str) -> str:
        """Current circuit state for ``kind``: closed/open/half_open."""
        return self._kind(kind).state

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-kind state, consecutive failures, and lifetime trips."""
        return {
            kind: {"state": entry.state, "failures": entry.failures,
                   "trips": entry.trips}
            for kind, entry in sorted(self._kinds.items())
        }
