"""Admission control: per-tenant budgets + weighted fair queueing.

Two protections keep one tenant from starving the rest:

- **budgets** — each tenant may have at most ``budget`` jobs admitted
  (queued + running) at once; excess submissions are rejected with
  ``budget_exceeded`` and a ``Retry-After`` hint instead of queueing.
- **weighted fair queueing** — dispatch order follows *start-time fair
  queueing* (SFQ): job ``j`` of tenant ``T`` gets a start tag ``S =
  max(V, F_T)`` and finish tag ``F_T = S + cost/weight_T``, where ``V``
  is the virtual time (the start tag of the job most recently
  dispatched) and ``cost`` is the job's work proxy. Dispatching the
  minimum finish tag shares throughput in proportion to tenant weights
  regardless of arrival bursts — a tenant spraying hundreds of cheap
  jobs cannot push a patient tenant's work arbitrarily far back.

The queue itself is bounded: past ``max_depth`` every submission is
rejected with ``queue_full``. Rejections are *explicit backpressure* —
the :class:`~repro.errors.AdmissionError` carries a ``retry_after``
estimate derived from the caller-supplied service-time estimator, so a
well-behaved client backs off instead of hammering.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import AdmissionError
from repro.service.jobs import JobRecord

__all__ = ["FairQueue"]


class _Tenant:
    __slots__ = ("name", "weight", "budget", "admitted", "finish")

    def __init__(self, name: str, weight: float, budget: int) -> None:
        self.name = name
        self.weight = weight
        self.budget = budget
        self.admitted = 0      # queued + running jobs
        self.finish = 0.0      # SFQ finish tag of the tenant's last job


class FairQueue:
    """Bounded, budgeted, weighted-fair job queue."""

    def __init__(
        self,
        max_depth: int = 64,
        default_budget: int = 16,
        default_weight: float = 1.0,
        weights: Optional[Dict[str, float]] = None,
        budgets: Optional[Dict[str, int]] = None,
        retry_after: Optional[Callable[[int], float]] = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.default_budget = default_budget
        self.default_weight = default_weight
        self._weights = dict(weights or {})
        self._budgets = dict(budgets or {})
        self._retry_after = retry_after or (lambda depth: 1.0 + 0.1 * depth)
        self._tenants: Dict[str, _Tenant] = {}
        self._heap: list = []  # (finish_tag, seq, record)
        self._seq = itertools.count()
        self._virtual = 0.0
        self.rejected: Dict[str, int] = {"queue_full": 0, "budget_exceeded": 0}

    # -- bookkeeping -------------------------------------------------------
    def _tenant(self, name: str) -> _Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = _Tenant(
                name,
                self._weights.get(name, self.default_weight),
                self._budgets.get(name, self.default_budget),
            )
            self._tenants[name] = tenant
        return tenant

    @property
    def depth(self) -> int:
        """Jobs waiting for dispatch."""
        return len(self._heap)

    def admitted(self, tenant: str) -> int:
        """Jobs the tenant currently has queued + running."""
        entry = self._tenants.get(tenant)
        return entry.admitted if entry is not None else 0

    # -- admission ---------------------------------------------------------
    def submit(self, record: JobRecord, force: bool = False) -> None:
        """Admit a job or raise :class:`AdmissionError` with a retry hint.

        ``force`` skips the budget/depth checks (still tagging the job for
        fair dispatch) — used when re-enqueueing journal-replayed jobs,
        which were already admitted by a previous incarnation and must
        never be dropped by this one's limits.
        """
        tenant = self._tenant(record.spec.tenant)
        if not force:
            if tenant.admitted >= tenant.budget:
                self.rejected["budget_exceeded"] += 1
                raise AdmissionError(
                    "budget_exceeded", self._retry_after(tenant.admitted)
                )
            if len(self._heap) >= self.max_depth:
                self.rejected["queue_full"] += 1
                raise AdmissionError(
                    "queue_full", self._retry_after(self.depth)
                )
        start = max(self._virtual, tenant.finish)
        tenant.finish = start + record.spec.cost() / tenant.weight
        tenant.admitted += 1
        heapq.heappush(self._heap, (tenant.finish, next(self._seq), record))

    def submit_batch(self, records: Sequence[JobRecord]
                     ) -> List[Optional[AdmissionError]]:
        """Admit a whole tick's submissions in one queue operation.

        Returns one slot per record, aligned: ``None`` when admitted, the
        :class:`AdmissionError` (not raised) when rejected. Budget and
        depth limits are applied in order — a tenant whose budget runs
        out mid-batch has its earlier records admitted and the rest
        rejected, exactly as sequential :meth:`submit` calls would —
        but SFQ tags are assigned with one pass and the heap is repaired
        with a single ``heapify`` instead of ``len(records)`` sift-ups.

        ``retry_after`` hints within the batch are monotone per reason:
        a later rejection never advertises a shorter wait than an
        earlier one, so clients that submitted in order also re-arrive
        in order instead of inverting into a new stampede.
        """
        outcomes: List[Optional[AdmissionError]] = []
        admitted: List[tuple] = []
        depth = len(self._heap)
        floors: Dict[str, float] = {}
        for record in records:
            tenant = self._tenant(record.spec.tenant)
            reason = None
            hint = 0.0
            if tenant.admitted >= tenant.budget:
                reason = "budget_exceeded"
                hint = self._retry_after(tenant.admitted)
            elif depth >= self.max_depth:
                reason = "queue_full"
                hint = self._retry_after(depth)
            if reason is not None:
                self.rejected[reason] += 1
                hint = max(hint, floors.get(reason, 0.0))
                floors[reason] = hint
                outcomes.append(AdmissionError(reason, hint))
                continue
            start = max(self._virtual, tenant.finish)
            tenant.finish = start + record.spec.cost() / tenant.weight
            tenant.admitted += 1
            depth += 1
            admitted.append((tenant.finish, next(self._seq), record))
            outcomes.append(None)
        if admitted:
            self._heap.extend(admitted)
            heapq.heapify(self._heap)
        return outcomes

    def next_job(self) -> Optional[JobRecord]:
        """Pop the record with the minimum finish tag (None when empty).

        Advances the virtual time to the dispatched job's start tag so
        tenants going idle re-enter at the current service level rather
        than with banked credit.
        """
        if not self._heap:
            return None
        finish, _seq, record = heapq.heappop(self._heap)
        tenant = self._tenants[record.spec.tenant]
        start = finish - record.spec.cost() / tenant.weight
        if start > self._virtual:
            self._virtual = start
        return record

    def peek(self) -> Optional[JobRecord]:
        """The record :meth:`next_job` would return, without popping."""
        return self._heap[0][2] if self._heap else None

    def next_batch(self, limit: int) -> List[JobRecord]:
        """Pop up to ``limit`` records in fair-dispatch order."""
        batch: List[JobRecord] = []
        while len(batch) < limit:
            record = self.next_job()
            if record is None:
                break
            batch.append(record)
        return batch

    def release(self, tenant_name: str) -> None:
        """A job of the tenant reached a terminal state: free budget."""
        tenant = self._tenants.get(tenant_name)
        if tenant is not None and tenant.admitted > 0:
            tenant.admitted -= 1

    def stats(self) -> Dict[str, object]:
        """Queue depth, rejection counters, and per-tenant accounting."""
        return {
            "depth": self.depth,
            "max_depth": self.max_depth,
            "rejected": dict(self.rejected),
            "tenants": {
                name: {"admitted": t.admitted, "weight": t.weight,
                       "budget": t.budget}
                for name, t in sorted(self._tenants.items())
            },
        }
