"""The experiment server: asyncio unix-socket serving of campaign jobs.

``ExperimentServer`` wraps the hardened campaign machinery of
:mod:`repro.experiments.parallel` behind a long-running job-submission
API. One JSON object per line in each direction over a unix socket:

- ``{"op": "submit", "job": {...}, "wait": true}`` — admit a job
  (see :class:`~repro.service.jobs.JobSpec` for the payload); with
  ``wait`` the response arrives when the job is terminal, otherwise
  immediately with the assigned ``job_id``. Rejections carry ``error``
  (``queue_full`` / ``budget_exceeded`` / ``circuit_open`` /
  ``draining``) and a ``retry_after`` hint in seconds.
- ``{"op": "status", "job_id": ...}`` — one job's record.
- ``{"op": "stats"}`` — server-wide counters.
- ``{"op": "drain"}`` — stop admitting, finish in-flight work, reply.
- ``{"op": "ping"}`` — liveness.

Robustness model (the PR's headline):

- **admission** — per-tenant budgets + weighted fair queueing + a
  bounded queue (:mod:`repro.service.admission`); rejected work gets
  explicit backpressure, never an unbounded queue.
- **degradation** — queue pressure sheds eligible jobs to cheaper
  fidelity tiers (:mod:`repro.service.shedding`), recorded everywhere.
- **worker faults** — jobs execute in ``spawn`` worker processes; a
  crashed worker (``BrokenProcessPool``) or a straggler past the task
  timeout recycles the pool and re-submits the victim with a bounded
  attempt budget (``REPRO_TASK_TIMEOUT`` / ``REPRO_TASK_RETRIES``
  semantics shared with :func:`repro.experiments.parallel.run_campaign`).
- **circuit breaking** — repeated failures of one experiment kind open
  a breaker (:mod:`repro.service.breaker`) so poisoned configurations
  stop consuming worker slots.
- **crash consistency** — every accepted job is journaled before it is
  acknowledged; a ``kill -9``'d server replays the journal on restart,
  completes already-computed jobs straight from the content-addressed
  result store, and re-enqueues the rest. Results are exactly-once *by
  construction*: re-executing a deterministic job publishes a
  byte-identical entry under the same content address.
- **drain** — SIGTERM finishes in-flight jobs, journals everything,
  then exits; no accepted job is abandoned silently.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Dict, List, Optional

from repro.errors import AdmissionError, ReproError, ServiceError
from repro.experiments.parallel import (
    _default_task_retries,
    _default_task_timeout,
    _execute_task,
    result_fingerprint,
)
from repro.service.admission import FairQueue
from repro.service.breaker import CircuitBreaker
from repro.service.jobs import DONE, FAILED, QUEUED, RUNNING, JobRecord, JobSpec
from repro.service.journal import Journal, replay_events
from repro.service.shedding import SheddingPolicy
from repro.service.store import SharedResultStore

__all__ = ["ServerConfig", "ExperimentServer"]


@dataclass
class ServerConfig:
    """Everything that shapes one server's behaviour."""

    socket_path: str
    journal_path: str
    cache_dir: Optional[str] = None
    workers: int = 2
    queue_depth: int = 64
    tenant_budget: int = 16
    tenant_weights: Dict[str, float] = field(default_factory=dict)
    tenant_budgets: Dict[str, int] = field(default_factory=dict)
    shed_hybrid_depth: int = 16
    shed_fluid_depth: int = 48
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    #: per-attempt wall budget; None falls back to REPRO_TASK_TIMEOUT
    task_timeout: Optional[float] = None
    #: crash/timeout re-submissions per job; None -> REPRO_TASK_RETRIES
    max_retries: Optional[int] = None
    #: run jobs on threads instead of worker processes — fast for tests
    #: and benches that do not exercise the crash paths
    inline: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {self.workers}")


class ExperimentServer:
    """One long-running serving instance (see the module docstring)."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.store = SharedResultStore(config.cache_dir)
        self.journal = Journal(config.journal_path)
        self.queue = FairQueue(
            max_depth=config.queue_depth,
            default_budget=config.tenant_budget,
            weights=config.tenant_weights,
            budgets=config.tenant_budgets,
            retry_after=self._retry_after,
        )
        self.shedding = SheddingPolicy(
            config.shed_hybrid_depth, config.shed_fluid_depth
        )
        self.breaker = CircuitBreaker(
            config.breaker_threshold, config.breaker_cooldown
        )
        self.task_timeout = _default_task_timeout(config.task_timeout)
        self.max_retries = _default_task_retries(config.max_retries)
        self.records: Dict[str, JobRecord] = {}
        self._inflight: Dict[str, str] = {}  # requested key -> primary id
        self._events: Dict[str, asyncio.Event] = {}
        self._seq = 0
        self._running = 0
        self._draining = False
        self._stopping = False
        self._work: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._runners: List[asyncio.Task] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool = None
        self._pool_generation = 0
        self._service_ewma = 1.0  # seconds per job, for Retry-After hints
        self.counters = {
            "submitted": 0, "accepted": 0, "completed": 0, "failed": 0,
            "shed": 0, "dedup_inflight": 0, "retries": 0, "resumed": 0,
            "rejected_circuit": 0, "rejected_draining": 0,
        }
        self.latencies: List[float] = []

    # -- lifecycle ---------------------------------------------------------
    async def start(self, handle_signals: bool = False) -> None:
        """Replay the journal, bind the socket, start the runner tasks."""
        loop = asyncio.get_running_loop()
        self._work = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._resume()
        sock_dir = os.path.dirname(os.path.abspath(self.config.socket_path))
        os.makedirs(sock_dir, exist_ok=True)
        try:
            os.unlink(self.config.socket_path)
        except FileNotFoundError:
            pass
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=self.config.socket_path,
            limit=4 * 1024 * 1024,
        )
        self._runners = [
            asyncio.ensure_future(self._runner())
            for _ in range(self.config.workers)
        ]
        if handle_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self.shutdown())
                )

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` cancels the accept loop."""
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def shutdown(self) -> None:
        """Graceful drain: finish in-flight jobs, journal, close, stop."""
        if self._stopping:
            return
        self._draining = True
        await self._idle.wait()
        self._stopping = True
        self._work.set()  # release idle runners so they observe stopping
        for runner in self._runners:
            runner.cancel()
        await asyncio.gather(*self._runners, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._teardown_pool()
        self.journal.close()
        try:
            os.unlink(self.config.socket_path)
        except OSError:
            pass

    # -- journal resume ----------------------------------------------------
    def _resume(self) -> None:
        """Fold journal events into records; finish or re-enqueue them."""
        events = replay_events(self.journal.path)
        for event in events:
            ev, job_id = event["ev"], event.get("id")
            if ev == "submit":
                spec = JobSpec.from_wire(event["job"])
                record = JobRecord(
                    job_id=job_id, spec=spec, key=event.get("key"),
                    submitted_at=event.get("t", 0.0),
                )
                self.records[job_id] = record
                num = int(job_id.split("-")[-1])
                if num >= self._seq:
                    self._seq = num + 1
            elif job_id not in self.records:
                continue  # event for a compacted-away record
            elif ev == "shed":
                self.records[job_id].shed_to = event["to"]
            elif ev == "retry":
                self.records[job_id].attempts = event["attempts"]
            elif ev == "done":
                record = self.records[job_id]
                record.state = DONE
                record.key = event.get("key", record.key)
                record.fingerprint = event.get("fingerprint")
                record.makespan = event.get("makespan")
                record.latency = event.get("latency")
                record.source = event.get("source", "computed")
            elif ev == "failed":
                record = self.records[job_id]
                record.state = FAILED
                record.error = event.get("error")
        # fold replayed history into the counters so stats() reports
        # lifetime-of-the-journal numbers, not just this incarnation's
        for record in self.records.values():
            self.counters["submitted"] += 1
            self.counters["accepted"] += 1
            self.counters["retries"] += record.attempts
            if record.shed_to:
                self.counters["shed"] += 1
            if record.state == DONE:
                self.counters["completed"] += 1
            elif record.state == FAILED:
                self.counters["failed"] += 1
        pending = [r for r in self.records.values() if not r.terminal]
        for record in pending:
            # a job that was RUNNING at the crash never finished: treat it
            # as queued — deterministic re-execution is side-effect-free
            record.state = QUEUED
            effective = record.shed_to or record.spec.fidelity
            key = self.store.key_for(record.spec, effective)
            record.key = key
            cached = self.store.load(key, record.spec.tenant)
            if cached is not None:
                # finished before the crash but after the last durable
                # "done" record — the content-addressed store is the
                # source of truth, so complete it without recomputing
                self._finish(record, cached, source="hit", journal=True)
                self.counters["resumed"] += 1
                continue
            self.queue.submit(record, force=True)
            # restore singleflight so post-restart duplicates coalesce
            # (new submissions look up the *requested*-tier key)
            self._inflight.setdefault(key, record.job_id)
            requested_key = self.store.key_for(record.spec)
            self._inflight.setdefault(requested_key, record.job_id)
            self.counters["resumed"] += 1
        if events:
            self._compact()
        if self.queue.depth:
            self._work.set()
            self._idle.clear()

    def _compact(self) -> None:
        """Rewrite the journal as one submit (+ terminal) line per job."""
        folded: List[Dict[str, Any]] = []
        for record in self.records.values():
            folded.append({
                "ev": "submit", "id": record.job_id,
                "job": record.spec.to_wire(), "key": record.key,
                "t": record.submitted_at,
            })
            if record.shed_to:
                folded.append({"ev": "shed", "id": record.job_id,
                               "to": record.shed_to})
            if record.attempts:
                folded.append({"ev": "retry", "id": record.job_id,
                               "attempts": record.attempts})
            if record.state == DONE:
                folded.append({
                    "ev": "done", "id": record.job_id, "key": record.key,
                    "fingerprint": record.fingerprint,
                    "makespan": record.makespan,
                    "latency": record.latency, "source": record.source,
                })
            elif record.state == FAILED:
                folded.append({"ev": "failed", "id": record.job_id,
                               "error": record.error})
        self.journal.compact(folded)

    # -- wire --------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    response = await self._dispatch(request)
                except (ServiceError, ValueError) as exc:
                    response = {"ok": False, "error": "bad_request",
                                "detail": str(exc)}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            # shutdown cancels handler tasks; finish cleanly instead of
            # ending CANCELLED (asyncio.streams logs a spurious traceback
            # for cancelled connection tasks)
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "submit":
            return await self._submit(request)
        if op == "status":
            record = self.records.get(request.get("job_id", ""))
            if record is None:
                return {"ok": False, "error": "unknown_job"}
            return {"ok": True, **record.to_dict()}
        if op == "stats":
            return {"ok": True, **self.stats()}
        if op == "drain":
            await self.shutdown()
            return {"ok": True, "drained": True}
        return {"ok": False, "error": "unknown_op", "detail": str(op)}

    async def _submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self.counters["submitted"] += 1
        spec = JobSpec.from_wire(request.get("job"))
        if self._draining:
            self.counters["rejected_draining"] += 1
            return {"ok": False, "error": "draining", "retry_after": 5.0}
        allowed, retry_after = self.breaker.check(spec.kind)
        if not allowed:
            self.counters["rejected_circuit"] += 1
            return {"ok": False, "error": "circuit_open",
                    "retry_after": retry_after}
        key = self.store.key_for(spec)
        job_id = f"job-{self._seq}"
        record = JobRecord(job_id=job_id, spec=spec, key=key,
                           submitted_at=time.time())
        # singleflight: identical content already in flight -> coalesce
        primary_id = self._inflight.get(key)
        primary = self.records.get(primary_id) if primary_id else None
        if primary is not None and not primary.terminal:
            self._seq += 1
            record.dedup_of = primary_id
            self.records[job_id] = record
            self.journal.append({
                "ev": "submit", "id": job_id, "job": spec.to_wire(),
                "key": key, "t": record.submitted_at,
            })
            primary.followers.append(job_id)
            self.counters["accepted"] += 1
            self.counters["dedup_inflight"] += 1
            return await self._respond(record, request)
        # already computed -> serve straight from the shared store
        cached = self.store.load(key, spec.tenant)
        if cached is not None:
            self._seq += 1
            self.records[job_id] = record
            self.journal.append({
                "ev": "submit", "id": job_id, "job": spec.to_wire(),
                "key": key, "t": record.submitted_at,
            })
            self.counters["accepted"] += 1
            self._finish(record, cached, source="hit", journal=True)
            return await self._respond(record, request)
        try:
            self.queue.submit(record)
        except AdmissionError as exc:
            return {"ok": False, "error": exc.reason,
                    "retry_after": exc.retry_after}
        self._seq += 1
        self.records[job_id] = record
        self._inflight[key] = job_id
        self.journal.append({
            "ev": "submit", "id": job_id, "job": spec.to_wire(),
            "key": key, "t": record.submitted_at,
        })
        self.counters["accepted"] += 1
        self._idle.clear()
        self._work.set()
        return await self._respond(record, request)

    async def _respond(self, record: JobRecord,
                       request: Dict[str, Any]) -> Dict[str, Any]:
        if request.get("wait"):
            await self._event(record.job_id).wait()
        return {"ok": True, **record.to_dict()}

    def _event(self, job_id: str) -> asyncio.Event:
        event = self._events.get(job_id)
        if event is None:
            event = self._events[job_id] = asyncio.Event()
            if self.records[job_id].terminal:
                event.set()
        return event

    # -- execution ---------------------------------------------------------
    async def _runner(self) -> None:
        """One dispatch loop; ``config.workers`` of these run concurrently."""
        while not self._stopping:
            record = self.queue.next_job()
            if record is None:
                if self._running == 0:
                    self._idle.set()
                self._work.clear()
                try:
                    await self._work.wait()
                except asyncio.CancelledError:
                    return
                continue
            self._running += 1
            try:
                await self._run_job(record)
            finally:
                self._running -= 1
                if self._running == 0 and self.queue.depth == 0:
                    self._idle.set()

    async def _run_job(self, record: JobRecord) -> None:
        spec = record.spec
        shed_to = self.shedding.choose(self.queue.depth, spec)
        effective = shed_to or spec.fidelity
        if shed_to is not None:
            record.shed_to = shed_to
            record.key = self.store.key_for(spec, shed_to)
            self.counters["shed"] += 1
            self.journal.append({"ev": "shed", "id": record.job_id,
                                 "to": shed_to})
            cached = self.store.load(record.key, spec.tenant)
            if cached is not None:  # the degraded tier is already computed
                self._finish(record, cached, source="hit", journal=True)
                return
        record.state = RUNNING
        self.journal.append({"ev": "start", "id": record.job_id,
                             "fidelity": effective})
        task = spec.run_task(effective)
        loop = asyncio.get_running_loop()
        started = time.monotonic()
        while True:
            generation = self._pool_generation
            pool = self._ensure_pool()
            future = loop.run_in_executor(pool, _execute_task, task)
            try:
                result = await asyncio.wait_for(future, self.task_timeout)
                break
            except asyncio.TimeoutError:
                reason = "task timeout"
            except BrokenProcessPool:
                reason = "worker crashed"
            except ReproError as exc:
                # deterministic simulation failure: retrying cannot help
                self._fail(record, f"{type(exc).__name__}: {exc}")
                return
            except asyncio.CancelledError:
                record.state = QUEUED  # server stopping; resume re-runs it
                raise
            self._recycle_pool(generation)
            record.attempts += 1
            self.counters["retries"] += 1
            self.journal.append({"ev": "retry", "id": record.job_id,
                                 "attempts": record.attempts,
                                 "reason": reason})
            if record.attempts > self.max_retries:
                self._fail(record, f"{reason}; retry budget exhausted "
                                   f"after {record.attempts} attempts")
                return
        elapsed = time.monotonic() - started
        self._service_ewma += 0.2 * (elapsed - self._service_ewma)
        self.store.store(record.key, result, spec.tenant)
        self._finish(record, result, source="computed", journal=True)

    def _finish(self, record: JobRecord, result, source: str,
                journal: bool) -> None:
        record.state = DONE
        record.source = source
        record.makespan = result.makespan
        record.fingerprint = result_fingerprint(result)
        record.finished_at = time.time()
        record.latency = max(record.finished_at - record.submitted_at, 0.0)
        if journal:
            self.journal.append({
                "ev": "done", "id": record.job_id, "key": record.key,
                "fingerprint": record.fingerprint,
                "makespan": record.makespan, "latency": record.latency,
                "source": source,
            })
        self.counters["completed"] += 1
        self.latencies.append(record.latency)
        del self.latencies[:-10000]  # bound the stats buffer
        self.breaker.record_success(record.spec.kind)
        self.queue.release(record.spec.tenant)
        self._wake(record)
        self._resolve_followers(record, result)

    def _fail(self, record: JobRecord, error: str) -> None:
        record.state = FAILED
        record.error = error
        record.finished_at = time.time()
        record.latency = max(record.finished_at - record.submitted_at, 0.0)
        self.journal.append({"ev": "failed", "id": record.job_id,
                             "error": error})
        self.counters["failed"] += 1
        self.breaker.record_failure(record.spec.kind)
        self.queue.release(record.spec.tenant)
        self._wake(record)
        self._resolve_followers(record, None)

    def _resolve_followers(self, primary: JobRecord, result) -> None:
        if self._inflight.get(primary.key) == primary.job_id:
            del self._inflight[primary.key]
        # a requested-tier key may differ after a shed; clear that too
        requested_key = self.store.key_for(primary.spec)
        if self._inflight.get(requested_key) == primary.job_id:
            del self._inflight[requested_key]
        for follower_id in primary.followers:
            follower = self.records.get(follower_id)
            if follower is None or follower.terminal:
                continue
            if result is None:
                follower.state = FAILED
                follower.error = primary.error
                self.journal.append({"ev": "failed", "id": follower_id,
                                     "error": primary.error})
                self.counters["failed"] += 1
            else:
                follower.state = DONE
                follower.source = "dedup"
                follower.shed_to = primary.shed_to
                follower.key = primary.key
                follower.makespan = primary.makespan
                follower.fingerprint = primary.fingerprint
                follower.finished_at = time.time()
                follower.latency = max(
                    follower.finished_at - follower.submitted_at, 0.0)
                self.journal.append({
                    "ev": "done", "id": follower_id, "key": follower.key,
                    "fingerprint": follower.fingerprint,
                    "makespan": follower.makespan,
                    "latency": follower.latency, "source": "dedup",
                })
                self.counters["completed"] += 1
                self.latencies.append(follower.latency)
            self._wake(follower)
        primary.followers.clear()

    def _wake(self, record: JobRecord) -> None:
        event = self._events.get(record.job_id)
        if event is not None:
            event.set()

    # -- worker pool -------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            if self.config.inline:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.config.workers,
                    thread_name_prefix="repro-service",
                )
            else:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.config.workers,
                    mp_context=get_context("spawn"),
                )
        return self._pool

    def _recycle_pool(self, generation: int) -> None:
        """Replace a broken/hung pool exactly once per generation."""
        if generation != self._pool_generation:
            return  # another victim of the same failure already recycled
        self._pool_generation += 1
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _teardown_pool(self) -> None:
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- reporting ---------------------------------------------------------
    def _retry_after(self, depth: int) -> float:
        """Backpressure hint: projected time to drain the backlog."""
        return max(
            0.5, depth * self._service_ewma / max(self.config.workers, 1)
        )

    def stats(self) -> Dict[str, Any]:
        """Counters, queue/breaker/store state, and latency percentiles."""
        latencies = sorted(self.latencies)

        def pct(p: float) -> Optional[float]:
            if not latencies:
                return None
            return latencies[min(int(p * len(latencies)), len(latencies) - 1)]

        pending = sum(1 for r in self.records.values() if not r.terminal)
        return {
            "counters": dict(self.counters),
            "pending": pending,
            "draining": self._draining,
            "queue": self.queue.stats(),
            "breaker": self.breaker.stats(),
            "store": self.store.stats(),
            "latency_p50": pct(0.50),
            "latency_p99": pct(0.99),
            "journal_records": self.journal.appended,
        }
