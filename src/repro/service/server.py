"""The experiment server: asyncio unix-socket serving of campaign jobs.

``ExperimentServer`` wraps the hardened campaign machinery of
:mod:`repro.experiments.parallel` behind a long-running job-submission
API. One JSON object per line in each direction over a unix socket:

- ``{"op": "submit", "job": {...}, "wait": true}`` — admit a job
  (see :class:`~repro.service.jobs.JobSpec` for the payload); with
  ``wait`` the response arrives when the job is terminal, otherwise
  immediately with the assigned ``job_id``. Rejections carry ``error``
  (``queue_full`` / ``budget_exceeded`` / ``circuit_open`` /
  ``draining``) and a ``retry_after`` hint in seconds.
- ``{"op": "status", "job_id": ...}`` — one job's record; completed
  jobs additionally carry a ``result_handle`` (payload-segment offset +
  length), so repeated polls stay O(1) no matter how large the result.
- ``{"op": "result", "key": ...}`` — the stored result itself: a JSON
  header line followed by the raw CRC-framed bytes, streamed straight
  from the store's mmap segment without re-encoding.
- ``{"op": "stats"}`` — server-wide counters.
- ``{"op": "drain"}`` — stop admitting, finish in-flight work, reply.
- ``{"op": "ping"}`` — liveness.

Robustness model (PR 7's headline) — admission control with explicit
backpressure, shedding to cheaper fidelity tiers under pressure,
crash-isolated ``spawn`` workers with bounded retries, per-kind circuit
breaking, journal-before-ack crash consistency, and drain-on-SIGTERM —
is unchanged. What this revision rebuilds is the *hot path*, applying
the paper's core lesson (per-operation overheads dominate at scale;
batched/staged paths amortize them) to the serving layer itself:

- **group-commit journaling** — concurrent submits share one buffered
  write + one ``fsync`` per commit window
  (:class:`~repro.service.journal.GroupCommitter`) instead of paying a
  per-job ``fsync``; the barrier contract (no ack before durable) is
  kept by awaiting the window's commit future.
- **zero-copy result delivery** — results resolve through the store's
  in-memory LRU index and stream from an mmap payload segment
  (:class:`~repro.service.store.SharedResultStore`); the serving path
  never re-reads, re-decodes, or re-encodes a stored result.
- **batched admission and dispatch** — every submit that arrives in one
  event-loop tick is admitted with a single
  :meth:`~repro.service.admission.FairQueue.submit_batch` (one heap
  repair, one commit window), and small degradable jobs are fused into
  multi-job worker tasks (``fuse_small_jobs``) so a worker round trip
  is paid once per batch, not once per job.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import AdmissionError, ReproError, ServiceError
from repro.experiments.parallel import (
    _default_task_retries,
    _default_task_timeout,
    _execute_task,
    result_fingerprint,
)
from repro.perf.metrics import MetricsTimeline
from repro.service.admission import FairQueue
from repro.service.breaker import CircuitBreaker
from repro.service.jobs import DONE, FAILED, QUEUED, RUNNING, JobRecord, JobSpec
from repro.service.journal import GroupCommitter, Journal, iter_events
from repro.service.shedding import SheddingPolicy
from repro.service.store import SharedResultStore

__all__ = ["ServerConfig", "ExperimentServer"]


def _execute_task_batch(tasks) -> List[Tuple[bool, Any]]:
    """Worker entry point for a fused batch: one round trip, many jobs.

    Deterministic simulation failures are isolated per task (``(False,
    message)``); anything harsher — a crash, a kill — takes the whole
    worker down and the server falls back to per-job execution, so one
    poisoned job can delay but never corrupt its batchmates.
    """
    out: List[Tuple[bool, Any]] = []
    for task in tasks:
        try:
            out.append((True, _execute_task(task)))
        except ReproError as exc:
            out.append((False, f"{type(exc).__name__}: {exc}"))
    return out


def _warm_worker() -> int:
    """Run one tiny throwaway repetition in a fresh pool worker.

    Merely booting the interpreter leaves the first real task paying
    the simulator's lazy setup (~80ms); executing a 1-frame job here
    moves that cost into the prewarm window, which overlaps socket
    setup and (after a restart) client reconnects. Best-effort: real
    jobs surface real errors.
    """
    try:
        _execute_task(JobSpec(tenant="_prewarm", frames=1, pairs=1).run_task())
    except Exception:
        pass
    return os.getpid()


def _worker_context():
    """Crash-isolated multiprocessing context for the worker pool.

    ``forkserver`` keeps spawn's isolation guarantees (workers never
    inherit the server's event loop or threads — the daemon is a clean
    process) but pays the heavy import chain once, in the daemon:
    fresh workers — including every post-crash pool recycle and the
    pool of a just-restarted server — fork in milliseconds instead of
    re-importing for ~700ms. Falls back to ``spawn`` where forkserver
    is unavailable.
    """
    try:
        ctx = get_context("forkserver")
        ctx.set_forkserver_preload(["repro.service.server"])
        return ctx
    except ValueError:  # pragma: no cover - non-forkserver platform
        return get_context("spawn")


@dataclass
class ServerConfig:
    """Everything that shapes one server's behaviour."""

    socket_path: str
    journal_path: str
    cache_dir: Optional[str] = None
    workers: int = 2
    queue_depth: int = 64
    tenant_budget: int = 16
    tenant_weights: Dict[str, float] = field(default_factory=dict)
    tenant_budgets: Dict[str, int] = field(default_factory=dict)
    shed_hybrid_depth: int = 16
    shed_fluid_depth: int = 48
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    #: per-attempt wall budget; None falls back to REPRO_TASK_TIMEOUT
    task_timeout: Optional[float] = None
    #: crash/timeout re-submissions per job; None -> REPRO_TASK_RETRIES
    max_retries: Optional[int] = None
    #: run jobs on threads instead of worker processes — fast for tests
    #: and benches that do not exercise the crash paths
    inline: bool = False
    #: group-commit latency bound: how long the journal waits for more
    #: events to share an fsync (0 = sync every batch immediately)
    commit_window: float = 0.002
    #: size bound of one group commit
    commit_max_batch: int = 512
    #: boot-time journal compaction triggers at this size (bytes);
    #: small journals replay faster than they compact
    compact_min_bytes: int = 1 << 20
    #: result-store LRU index capacity (keys resolved without disk I/O)
    lru_entries: int = 512
    #: fuse up to this many small degradable jobs into one worker round
    #: trip (1 disables fusion)
    fuse_small_jobs: int = 4
    #: only jobs with cost() at or below this are fusable
    fuse_max_cost: int = 16
    #: unix-socket listen backlog — must absorb a client herd's
    #: simultaneous connects (the asyncio default of 100 drops them)
    backlog: int = 512
    #: write the perf-metrics timeline (commit window / LRU / batch
    #: gauges) to this JSON file at shutdown
    metrics_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {self.workers}")
        if self.commit_window < 0:
            raise ServiceError(
                f"commit_window must be >= 0, got {self.commit_window}"
            )
        if self.fuse_small_jobs < 1:
            raise ServiceError(
                f"fuse_small_jobs must be >= 1, got {self.fuse_small_jobs}"
            )
        if self.backlog < 1:
            raise ServiceError(f"backlog must be >= 1, got {self.backlog}")


class ExperimentServer:
    """One long-running serving instance (see the module docstring)."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.store = SharedResultStore(
            config.cache_dir, lru_entries=config.lru_entries
        )
        self.journal = Journal(config.journal_path)
        self.committer = GroupCommitter(
            self.journal, window=config.commit_window,
            max_batch=config.commit_max_batch,
        )
        self.queue = FairQueue(
            max_depth=config.queue_depth,
            default_budget=config.tenant_budget,
            weights=config.tenant_weights,
            budgets=config.tenant_budgets,
            retry_after=self._retry_after,
        )
        self.shedding = SheddingPolicy(
            config.shed_hybrid_depth, config.shed_fluid_depth
        )
        self.breaker = CircuitBreaker(
            config.breaker_threshold, config.breaker_cooldown
        )
        self.task_timeout = _default_task_timeout(config.task_timeout)
        self.max_retries = _default_task_retries(config.max_retries)
        self.records: Dict[str, JobRecord] = {}
        self._inflight: Dict[str, str] = {}  # requested key -> primary id
        self._events: Dict[str, asyncio.Event] = {}
        self._seq = 0
        self._running = 0
        self._draining = False
        self._stopping = False
        self._work: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._runners: List[asyncio.Task] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool = None
        self._pool_generation = 0
        self._prewarm_tasks: List[asyncio.Future] = []
        #: submissions staged for the current event-loop tick's batch
        self._staged: List[Tuple[JobRecord, asyncio.Future]] = []
        self._flush_scheduled = False
        # seconds per job, for Retry-After hints; starts optimistic (warm
        # jobs are ~ms) and converges on real service times — a
        # pessimistic start makes every client of a freshly restarted
        # server oversleep its first rejection
        self._service_ewma = 0.02
        self.counters = {
            "submitted": 0, "accepted": 0, "completed": 0, "failed": 0,
            "shed": 0, "dedup_inflight": 0, "retries": 0, "resumed": 0,
            "rejected_circuit": 0, "rejected_draining": 0,
        }
        self.dispatch = {
            "batches": 0, "jobs": 0, "fused_batches": 0, "fused_jobs": 0,
            "max_batch": 0, "fallbacks": 0,
        }
        self.admission = {"batches": 0, "jobs": 0, "max_batch": 0}
        self.latencies: List[float] = []
        self._t0 = time.monotonic()
        self.timeline = MetricsTimeline(
            clock=lambda: time.monotonic() - self._t0
        )

    # -- lifecycle ---------------------------------------------------------
    async def start(self, handle_signals: bool = False) -> None:
        """Replay the journal, bind the socket, start the runner tasks."""
        loop = asyncio.get_running_loop()
        self._work = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        # start worker interpreters booting before anything else: the
        # pool warms while the journal replays and the socket binds
        self._prewarm_pool()
        # resume with the committer stopped: boot-time events append
        # synchronously, so compaction sees a settled journal
        self._resume()
        self.committer.start()
        sock_dir = os.path.dirname(os.path.abspath(self.config.socket_path))
        os.makedirs(sock_dir, exist_ok=True)
        try:
            os.unlink(self.config.socket_path)
        except FileNotFoundError:
            pass
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=self.config.socket_path,
            limit=4 * 1024 * 1024, backlog=self.config.backlog,
        )
        self._runners = [
            asyncio.ensure_future(self._runner())
            for _ in range(self.config.workers)
        ]
        if handle_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self.shutdown())
                )

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` cancels the accept loop."""
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def shutdown(self) -> None:
        """Graceful drain: finish in-flight jobs, journal, close, stop."""
        if self._stopping:
            return
        self._draining = True
        await self._idle.wait()
        self._stopping = True
        self._work.set()  # release idle runners so they observe stopping
        for runner in self._runners:
            runner.cancel()
        await asyncio.gather(*self._runners, return_exceptions=True)
        await self.committer.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._teardown_pool()
        if self.config.metrics_path:
            self.timeline.write_json(self.config.metrics_path)
        self.journal.close()
        self.store.close()
        try:
            os.unlink(self.config.socket_path)
        except OSError:
            pass

    # -- journal resume ----------------------------------------------------
    def _resume(self) -> None:
        """Stream journal events into records; finish or re-enqueue them.

        Events are folded one at a time (:func:`iter_events`), so a
        journal of any size resumes in O(records-alive) memory, not
        O(events-ever).
        """
        replayed = 0
        for event in iter_events(self.journal.path):
            replayed += 1
            ev, job_id = event["ev"], event.get("id")
            if ev == "submit":
                spec = JobSpec.from_wire(event["job"])
                record = JobRecord(
                    job_id=job_id, spec=spec, key=event.get("key"),
                    submitted_at=event.get("t", 0.0),
                )
                self.records[job_id] = record
                num = int(job_id.split("-")[-1])
                if num >= self._seq:
                    self._seq = num + 1
            elif job_id not in self.records:
                continue  # event for a compacted-away record (or a flush)
            elif ev == "shed":
                self.records[job_id].shed_to = event["to"]
            elif ev == "retry":
                self.records[job_id].attempts = event["attempts"]
            elif ev == "done":
                record = self.records[job_id]
                record.state = DONE
                record.key = event.get("key", record.key)
                record.fingerprint = event.get("fingerprint")
                record.makespan = event.get("makespan")
                record.latency = event.get("latency")
                record.source = event.get("source", "computed")
            elif ev == "failed":
                record = self.records[job_id]
                record.state = FAILED
                record.error = event.get("error")
        # fold replayed history into the counters so stats() reports
        # lifetime-of-the-journal numbers, not just this incarnation's
        for record in self.records.values():
            self.counters["submitted"] += 1
            self.counters["accepted"] += 1
            self.counters["retries"] += record.attempts
            if record.shed_to:
                self.counters["shed"] += 1
            if record.state == DONE:
                self.counters["completed"] += 1
            elif record.state == FAILED:
                self.counters["failed"] += 1
        pending = [r for r in self.records.values() if not r.terminal]
        for record in pending:
            # a job that was RUNNING at the crash never finished: treat it
            # as queued — deterministic re-execution is side-effect-free
            record.state = QUEUED
            effective = record.shed_to or record.spec.fidelity
            key = self.store.key_for(record.spec, effective)
            record.key = key
            stored = self.store.fetch(key, record.spec.tenant)
            if stored is not None:
                # finished before the crash but after the last durable
                # "done" record — the content-addressed store is the
                # source of truth, so complete it without recomputing
                self._finish(record, makespan=stored.makespan,
                             fingerprint=stored.fingerprint, source="hit")
                self.counters["resumed"] += 1
                continue
            self.queue.submit(record, force=True)
            # restore singleflight so post-restart duplicates coalesce
            # (new submissions look up the *requested*-tier key)
            self._inflight.setdefault(key, record.job_id)
            requested_key = self.store.key_for(record.spec)
            self._inflight.setdefault(requested_key, record.job_id)
            self.counters["resumed"] += 1
        if replayed and self.journal.size() >= self.config.compact_min_bytes:
            self._compact()
        if self.queue.depth:
            self._work.set()
            self._idle.clear()

    def _compact(self) -> None:
        """Rewrite the journal as one submit (+ terminal) line per job."""
        folded: List[Dict[str, Any]] = []
        for record in self.records.values():
            folded.append({
                "ev": "submit", "id": record.job_id,
                "job": record.spec.to_wire(), "key": record.key,
                "t": record.submitted_at,
            })
            if record.shed_to:
                folded.append({"ev": "shed", "id": record.job_id,
                               "to": record.shed_to})
            if record.attempts:
                folded.append({"ev": "retry", "id": record.job_id,
                               "attempts": record.attempts})
            if record.state == DONE:
                folded.append({
                    "ev": "done", "id": record.job_id, "key": record.key,
                    "fingerprint": record.fingerprint,
                    "makespan": record.makespan,
                    "latency": record.latency, "source": record.source,
                })
            elif record.state == FAILED:
                folded.append({"ev": "failed", "id": record.job_id,
                               "error": record.error})
        self.journal.compact(folded)

    # -- wire --------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                payload: Optional[memoryview] = None
                try:
                    request = json.loads(line)
                    response = await self._dispatch(request)
                    if isinstance(response, tuple):
                        response, payload = response
                except (ServiceError, ValueError) as exc:
                    response = {"ok": False, "error": "bad_request",
                                "detail": str(exc)}
                writer.write(json.dumps(response).encode() + b"\n")
                if payload is not None:
                    # raw framed result bytes straight from the mmap —
                    # no re-encode, no copy on our side
                    writer.write(payload)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            # shutdown cancels handler tasks; finish cleanly instead of
            # ending CANCELLED (asyncio.streams logs a spurious traceback
            # for cancelled connection tasks)
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _dispatch(self, request: Dict[str, Any]):
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "submit":
            return await self._submit(request)
        if op == "status":
            record = self.records.get(request.get("job_id", ""))
            if record is None:
                return {"ok": False, "error": "unknown_job"}
            response = {"ok": True, **record.to_dict()}
            if record.state == DONE and record.key:
                handle = self.store.handle(record.key)
                if handle is not None:
                    # O(1) poll: enough to fetch the payload without the
                    # server touching disk or the store index again
                    response["result_handle"] = handle
            return response
        if op == "result":
            return self._result(request)
        if op == "stats":
            return {"ok": True, **self.stats()}
        if op == "drain":
            await self.shutdown()
            return {"ok": True, "drained": True}
        return {"ok": False, "error": "unknown_op", "detail": str(op)}

    def _result(self, request: Dict[str, Any]):
        """Zero-copy delivery: JSON header + raw framed result bytes."""
        key = request.get("key")
        if not key:
            record = self.records.get(request.get("job_id", ""))
            if record is None:
                return {"ok": False, "error": "unknown_job"}
            if record.state != DONE or not record.key:
                return {"ok": False, "error": "not_done",
                        "state": record.state}
            key = record.key
        view = self.store.payload(str(key))
        if view is None:
            return {"ok": False, "error": "unknown_result"}
        return {"ok": True, "key": key, "length": len(view)}, view

    async def _submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self.counters["submitted"] += 1
        spec = JobSpec.from_wire(request.get("job"))
        if self._draining:
            self.counters["rejected_draining"] += 1
            return {"ok": False, "error": "draining", "retry_after": 5.0}
        allowed, retry_after = self.breaker.check(spec.kind)
        if not allowed:
            self.counters["rejected_circuit"] += 1
            return {"ok": False, "error": "circuit_open",
                    "retry_after": retry_after}
        key = self.store.key_for(spec)
        job_id = f"job-{self._seq}"
        self._seq += 1
        record = JobRecord(job_id=job_id, spec=spec, key=key,
                           submitted_at=time.time())
        # already computed -> serve straight from the shared store (one
        # LRU lookup on the warm path; no disk read, no unpickle). No
        # commit barrier: the ack is already terminal, so losing this
        # record to a crash loses nothing a resubmission would not
        # re-derive from the store in O(1)
        stored = self.store.fetch(key, spec.tenant)
        if stored is not None:
            self.records[job_id] = record
            self.counters["accepted"] += 1
            self.committer.enqueue(self._submit_event(record))
            self._finish(record, makespan=stored.makespan,
                         fingerprint=stored.fingerprint, source="hit")
            return await self._respond(record, request)
        # everything else — in-flight dedup and queue admission — is
        # decided in this tick's batch, where the checks are race-free
        disposition = await self._stage(record)
        if isinstance(disposition, AdmissionError):
            return {"ok": False, "error": disposition.reason,
                    "retry_after": disposition.retry_after}
        return await self._respond(record, request)

    def _submit_event(self, record: JobRecord) -> Dict[str, Any]:
        return {"ev": "submit", "id": record.job_id,
                "job": record.spec.to_wire(), "key": record.key,
                "t": record.submitted_at}

    def _stage(self, record: JobRecord) -> "asyncio.Future":
        """Defer a submission to the end-of-tick admission batch."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._staged.append((record, future))
        if not self._flush_scheduled:
            self._flush_scheduled = True
            # call_soon runs after every already-ready submit coroutine
            # has staged its record — that set IS the batch
            loop.call_soon(self._flush_staged)
        return future

    def _flush_staged(self) -> None:
        """Admit one tick's submissions: one queue batch, one barrier.

        Runs synchronously on the loop (no awaits), so the singleflight
        and budget decisions inside are atomic with respect to every
        other coroutine.
        """
        self._flush_scheduled = False
        staged, self._staged = self._staged, []
        if not staged:
            return
        self.admission["batches"] += 1
        self.admission["jobs"] += len(staged)
        if len(staged) > self.admission["max_batch"]:
            self.admission["max_batch"] = len(staged)
        self.timeline.gauge("admission.batch_size").set(len(staged))
        events: List[Dict[str, Any]] = []
        barriered: List[asyncio.Future] = []
        to_admit: List[Tuple[JobRecord, asyncio.Future]] = []
        # duplicates *within* this batch coalesce onto the batch's first
        # record for their key; their fate follows its admission outcome
        batch_followers: Dict[str, List[Tuple[JobRecord, asyncio.Future]]] = {}

        def _attach(primary: JobRecord, record: JobRecord,
                    future: asyncio.Future) -> None:
            record.dedup_of = primary.job_id
            self.records[record.job_id] = record
            primary.followers.append(record.job_id)
            self.counters["accepted"] += 1
            self.counters["dedup_inflight"] += 1
            events.append(self._submit_event(record))
            barriered.append(future)

        for record, future in staged:
            # singleflight: identical content already in flight
            primary_id = self._inflight.get(record.key)
            primary = self.records.get(primary_id) if primary_id else None
            if primary is not None and not primary.terminal:
                _attach(primary, record, future)
                continue
            if record.key in batch_followers:
                batch_followers[record.key].append((record, future))
                continue
            batch_followers[record.key] = []
            to_admit.append((record, future))
        admitted_any = False
        if to_admit:
            outcomes = self.queue.submit_batch(
                [record for record, _ in to_admit]
            )
            for (record, future), error in zip(to_admit, outcomes):
                followers = batch_followers.get(record.key, [])
                if error is not None:
                    if not future.done():
                        future.set_result(error)
                    # batchmates that coalesced onto a rejected primary
                    # share its rejection (and its retry hint)
                    for _f_record, f_future in followers:
                        self.queue.rejected[error.reason] += 1
                        if not f_future.done():
                            f_future.set_result(error)
                    continue
                self.records[record.job_id] = record
                self._inflight[record.key] = record.job_id
                self.counters["accepted"] += 1
                events.append(self._submit_event(record))
                barriered.append(future)
                admitted_any = True
                for f_record, f_future in followers:
                    _attach(record, f_record, f_future)
        if events:
            barrier = self.committer.commit_batch(events)

            def _release(fut: "asyncio.Future", waiters=barriered) -> None:
                exc = fut.exception()
                for waiter in waiters:
                    if waiter.done():
                        continue
                    if exc is not None:
                        waiter.set_exception(exc)
                    else:
                        waiter.set_result(None)

            barrier.add_done_callback(_release)
        if admitted_any:
            self._idle.clear()
            self._work.set()
        self._sample_metrics()

    async def _respond(self, record: JobRecord,
                       request: Dict[str, Any]) -> Dict[str, Any]:
        if request.get("wait"):
            await self._event(record.job_id).wait()
        return {"ok": True, **record.to_dict()}

    def _event(self, job_id: str) -> asyncio.Event:
        event = self._events.get(job_id)
        if event is None:
            event = self._events[job_id] = asyncio.Event()
            if self.records[job_id].terminal:
                event.set()
        return event

    # -- execution ---------------------------------------------------------
    async def _runner(self) -> None:
        """One dispatch loop; ``config.workers`` of these run concurrently."""
        while not self._stopping:
            batch = self._claim_batch()
            if not batch:
                if self._running == 0:
                    self._idle.set()
                self._work.clear()
                try:
                    await self._work.wait()
                except asyncio.CancelledError:
                    return
                continue
            self._running += len(batch)
            try:
                await self._run_batch(batch)
            finally:
                self._running -= len(batch)
                if self._running == 0 and self.queue.depth == 0:
                    self._idle.set()

    def _fusable(self, record: JobRecord) -> bool:
        return (record.spec.degradable
                and record.spec.cost() <= self.config.fuse_max_cost)

    def _claim_batch(self) -> List[JobRecord]:
        """Pop the next job plus any fusable followers, in fair order."""
        record = self.queue.next_job()
        if record is None:
            return []
        batch = [record]
        limit = self.config.fuse_small_jobs
        if limit > 1 and self._fusable(record):
            while len(batch) < limit:
                head = self.queue.peek()
                if head is None or not self._fusable(head):
                    break
                batch.append(self.queue.next_job())
        return batch

    async def _run_batch(self, batch: List[JobRecord]) -> None:
        # one depth sample for the whole batch; per-record depths mirror
        # what sequential dispatch would have seen
        base_depth = self.queue.depth
        runnable: List[Tuple[JobRecord, Any]] = []
        for i, record in enumerate(batch):
            spec = record.spec
            depth = base_depth + len(batch) - 1 - i
            shed_to = self.shedding.choose(depth, spec)
            effective = shed_to or spec.fidelity
            if shed_to is not None:
                record.shed_to = shed_to
                record.key = self.store.key_for(spec, shed_to)
                self.counters["shed"] += 1
                self.committer.enqueue({"ev": "shed", "id": record.job_id,
                                        "to": shed_to})
            # a twin of this job may have published while it waited in
            # the queue (crash-resumed duplicates, shed-tier overlaps):
            # one LRU lookup beats recomputing
            stored = self.store.fetch(record.key, spec.tenant)
            if stored is not None:
                self._finish(record, makespan=stored.makespan,
                             fingerprint=stored.fingerprint, source="hit")
                continue
            record.state = RUNNING
            self.committer.enqueue({"ev": "start", "id": record.job_id,
                                    "fidelity": effective})
            runnable.append((record, spec.run_task(effective)))
        if not runnable:
            return
        self.dispatch["batches"] += 1
        self.dispatch["jobs"] += len(runnable)
        if len(runnable) > self.dispatch["max_batch"]:
            self.dispatch["max_batch"] = len(runnable)
        self.timeline.gauge("dispatch.batch_size").set(len(runnable))
        if len(runnable) == 1:
            await self._execute_single(*runnable[0])
            return
        self.dispatch["fused_batches"] += 1
        self.dispatch["fused_jobs"] += len(runnable)
        await self._execute_fused(runnable)

    async def _execute_fused(
        self, runnable: List[Tuple[JobRecord, Any]]
    ) -> None:
        """One worker round trip for the whole batch, with fallback."""
        records = [record for record, _ in runnable]
        tasks = [task for _, task in runnable]
        loop = asyncio.get_running_loop()
        timeout = (self.task_timeout * len(tasks)
                   if self.task_timeout is not None else None)
        generation = self._pool_generation
        pool = self._ensure_pool()
        started = time.monotonic()
        future = loop.run_in_executor(pool, _execute_task_batch, tasks)
        try:
            outcomes = await asyncio.wait_for(future, timeout)
        except asyncio.CancelledError:
            for record in records:
                record.state = QUEUED  # server stopping; resume re-runs
            raise
        except (asyncio.TimeoutError, BrokenProcessPool) as exc:
            reason = ("task timeout" if isinstance(exc, asyncio.TimeoutError)
                      else "worker crashed")
            self._recycle_pool(generation)
            self.dispatch["fallbacks"] += 1
            # the whole batch shared the worker, so every member charges
            # one attempt; survivors re-run individually, which isolates
            # the poisoned job and preserves the per-job retry budget
            for record, task in runnable:
                if self._note_retry(record, f"{reason} (fused batch)"):
                    await self._execute_single(record, task)
            return
        elapsed = time.monotonic() - started
        self._observe_service_time(elapsed / len(tasks))
        for (record, _task), (ok, payload) in zip(runnable, outcomes):
            if not ok:
                self._fail(record, payload)
                continue
            fingerprint = result_fingerprint(payload)
            self.store.store(record.key, payload, record.spec.tenant,
                             fingerprint=fingerprint)
            self._finish(record, makespan=payload.makespan,
                         fingerprint=fingerprint, source="computed")

    async def _execute_single(self, record: JobRecord, task) -> None:
        """PR 7's crash-isolated single-job execution loop."""
        loop = asyncio.get_running_loop()
        started = time.monotonic()
        while True:
            generation = self._pool_generation
            pool = self._ensure_pool()
            future = loop.run_in_executor(pool, _execute_task, task)
            try:
                result = await asyncio.wait_for(future, self.task_timeout)
                break
            except asyncio.TimeoutError:
                reason = "task timeout"
            except BrokenProcessPool:
                reason = "worker crashed"
            except ReproError as exc:
                # deterministic simulation failure: retrying cannot help
                self._fail(record, f"{type(exc).__name__}: {exc}")
                return
            except asyncio.CancelledError:
                record.state = QUEUED  # server stopping; resume re-runs it
                raise
            self._recycle_pool(generation)
            if not self._note_retry(record, reason):
                return
        elapsed = time.monotonic() - started
        self._observe_service_time(elapsed)
        fingerprint = result_fingerprint(result)
        self.store.store(record.key, result, record.spec.tenant,
                         fingerprint=fingerprint)
        self._finish(record, makespan=result.makespan,
                     fingerprint=fingerprint, source="computed")

    def _note_retry(self, record: JobRecord, reason: str) -> bool:
        """Charge one crash/timeout attempt; False when budget exhausted."""
        record.attempts += 1
        self.counters["retries"] += 1
        self.committer.enqueue({"ev": "retry", "id": record.job_id,
                                "attempts": record.attempts,
                                "reason": reason})
        if record.attempts > self.max_retries:
            self._fail(record, f"{reason}; retry budget exhausted "
                               f"after {record.attempts} attempts")
            return False
        return True

    def _observe_service_time(self, elapsed: float) -> None:
        self._service_ewma += 0.2 * (elapsed - self._service_ewma)

    def _finish(self, record: JobRecord, *, makespan: Optional[float],
                fingerprint: Optional[str], source: str,
                journal: bool = True) -> None:
        record.state = DONE
        record.source = source
        record.makespan = makespan
        record.fingerprint = fingerprint
        record.finished_at = time.time()
        record.latency = max(record.finished_at - record.submitted_at, 0.0)
        if journal:
            # no barrier: a lost "done" event re-derives from the
            # content-addressed store at resume
            self.committer.enqueue({
                "ev": "done", "id": record.job_id, "key": record.key,
                "fingerprint": record.fingerprint,
                "makespan": record.makespan, "latency": record.latency,
                "source": source,
            })
        self.counters["completed"] += 1
        self.latencies.append(record.latency)
        del self.latencies[:-10000]  # bound the stats buffer
        self.breaker.record_success(record.spec.kind)
        self.queue.release(record.spec.tenant)
        self._wake(record)
        self._resolve_followers(record, failed=False)

    def _fail(self, record: JobRecord, error: str) -> None:
        record.state = FAILED
        record.error = error
        record.finished_at = time.time()
        record.latency = max(record.finished_at - record.submitted_at, 0.0)
        self.committer.enqueue({"ev": "failed", "id": record.job_id,
                                "error": error})
        self.counters["failed"] += 1
        self.breaker.record_failure(record.spec.kind)
        self.queue.release(record.spec.tenant)
        self._wake(record)
        self._resolve_followers(record, failed=True)

    def _resolve_followers(self, primary: JobRecord, failed: bool) -> None:
        if self._inflight.get(primary.key) == primary.job_id:
            del self._inflight[primary.key]
        # a requested-tier key may differ after a shed; clear that too
        requested_key = self.store.key_for(primary.spec)
        if self._inflight.get(requested_key) == primary.job_id:
            del self._inflight[requested_key]
        for follower_id in primary.followers:
            follower = self.records.get(follower_id)
            if follower is None or follower.terminal:
                continue
            if failed:
                follower.state = FAILED
                follower.error = primary.error
                self.committer.enqueue({"ev": "failed", "id": follower_id,
                                        "error": primary.error})
                self.counters["failed"] += 1
            else:
                follower.state = DONE
                follower.source = "dedup"
                follower.shed_to = primary.shed_to
                follower.key = primary.key
                follower.makespan = primary.makespan
                follower.fingerprint = primary.fingerprint
                follower.finished_at = time.time()
                follower.latency = max(
                    follower.finished_at - follower.submitted_at, 0.0)
                self.committer.enqueue({
                    "ev": "done", "id": follower_id, "key": follower.key,
                    "fingerprint": follower.fingerprint,
                    "makespan": follower.makespan,
                    "latency": follower.latency, "source": "dedup",
                })
                self.counters["completed"] += 1
                self.latencies.append(follower.latency)
            self._wake(follower)
        primary.followers.clear()

    def _wake(self, record: JobRecord) -> None:
        event = self._events.get(record.job_id)
        if event is not None:
            event.set()

    # -- worker pool -------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            if self.config.inline:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.config.workers,
                    thread_name_prefix="repro-service",
                )
            else:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.config.workers,
                    mp_context=_worker_context(),
                )
        return self._pool

    def _prewarm_pool(self) -> None:
        """Start spawning worker interpreters before the first job.

        A cold ``spawn`` pool costs a full interpreter boot on first
        dispatch; warming overlaps that with socket setup so the first
        burst of real jobs does not pay it. Fire-and-forget: failures
        (e.g. the pool was recycled mid-warmup) are irrelevant.
        """
        if self.config.inline:
            return
        pool = self._ensure_pool()
        loop = asyncio.get_running_loop()
        for _ in range(self.config.workers):
            future = asyncio.ensure_future(
                loop.run_in_executor(pool, _warm_worker)
            )
            future.add_done_callback(lambda f: f.exception())
            self._prewarm_tasks.append(future)

    def _recycle_pool(self, generation: int) -> None:
        """Replace a broken/hung pool exactly once per generation."""
        if generation != self._pool_generation:
            return  # another victim of the same failure already recycled
        self._pool_generation += 1
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _teardown_pool(self) -> None:
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- reporting ---------------------------------------------------------
    def _retry_after(self, depth: int) -> float:
        """Backpressure hint: projected time to drain the backlog.

        Capped at half a second — a re-poll is two cheap syscalls, so
        even a deep post-restart backlog should not park clients for
        multiples of the real drain time.
        """
        return min(0.5, max(
            0.05, depth * self._service_ewma / max(self.config.workers, 1)
        ))

    def _sample_metrics(self) -> None:
        """Refresh the ISSUE-named gauges on the perf timeline."""
        lru = self.timeline.counter("store.lru_hits")
        delta = self.store.lru_hits - lru.value
        if delta > 0:
            lru.add(delta)
        window = self.committer.stats()["avg_events_per_sync"]
        if window is not None:
            self.timeline.gauge("service.commit_window").set(window)

    def stats(self) -> Dict[str, Any]:
        """Counters, queue/breaker/store state, and latency percentiles."""
        latencies = sorted(self.latencies)

        def pct(p: float) -> Optional[float]:
            if not latencies:
                return None
            return latencies[min(int(p * len(latencies)), len(latencies) - 1)]

        pending = sum(1 for r in self.records.values() if not r.terminal)
        return {
            "counters": dict(self.counters),
            "pending": pending,
            "draining": self._draining,
            "queue": self.queue.stats(),
            "breaker": self.breaker.stats(),
            "store": self.store.stats(),
            "dispatch": dict(self.dispatch),
            "admission_batches": dict(self.admission),
            "journal": {
                "records": self.journal.appended,
                "syncs": self.journal.syncs,
                "size_bytes": self.journal.size(),
                **self.committer.stats(),
            },
            "latency_p50": pct(0.50),
            "latency_p99": pct(0.99),
            "journal_records": self.journal.appended,
        }
