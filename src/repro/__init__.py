"""repro — a reproduction of *"Empirical Study of Molecular Dynamics
Workflow Data Movement: DYAD vs. Traditional I/O Systems"* (Lumsden et
al., 2024).

The library contains every system the paper's study depends on, built
from scratch:

- a deterministic discrete-event simulation kernel (:mod:`repro.sim`);
- a Corona-like cluster model — NVMe SSDs, InfiniBand-like fabric, nodes
  (:mod:`repro.cluster`);
- XFS-like and Lustre-like file systems behind one POSIX layer, plus
  advisory file locks (:mod:`repro.storage`);
- a Flux-KVS-like key-value store (:mod:`repro.kvs`);
- the DYAD middleware — node-local staging, global metadata management,
  multi-protocol synchronization, RDMA pulls (:mod:`repro.dyad`);
- the MD substrate — model catalogue, binary frame codec, a real
  Lennard-Jones engine, in-situ analytics (:mod:`repro.md`);
- the MD-inspired producer/consumer workflow harness
  (:mod:`repro.workflow`) and a real-threads local backend
  (:mod:`repro.backends`);
- Caliper/Thicket-like performance tooling (:mod:`repro.perf`);
- the per-figure reproduction harness (:mod:`repro.experiments`).

Quick start::

    from repro.md import JAC
    from repro.workflow import WorkflowSpec, System, run_workflow

    spec = WorkflowSpec(system=System.DYAD, model=JAC, stride=880,
                        frames=32, pairs=2)
    result = run_workflow(spec)
    print(result.consumption_time)
"""

from repro.errors import ReproError
from repro.md.models import APOA1, F1_ATPASE, JAC, MODELS, STMV
from repro.workflow import (
    Placement,
    System,
    WorkflowResult,
    WorkflowSpec,
    run_repetitions,
    run_workflow,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "APOA1",
    "F1_ATPASE",
    "JAC",
    "MODELS",
    "STMV",
    "Placement",
    "System",
    "WorkflowResult",
    "WorkflowSpec",
    "run_repetitions",
    "run_workflow",
    "__version__",
]
