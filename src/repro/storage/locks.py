"""Advisory whole-file reader/writer locks (``flock``-style).

DYAD's fast-path synchronization takes a shared lock on a produced file
before reading it and relies on the producer's exclusive lock being released
at close time; XFS/Lustre workflows may also use locks for manual
synchronization. Locks are fair (FIFO): a queued exclusive request blocks
later shared requests, preventing writer starvation.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.errors import LockError
from repro.sim.core import Environment, Event

__all__ = ["LockMode", "Lock", "LockTable"]


class LockMode(enum.Enum):
    """Lock compatibility: any number of SHARED xor one EXCLUSIVE."""

    SHARED = "sh"
    EXCLUSIVE = "ex"


class Lock:
    """A granted lock; release through :meth:`LockTable.release`."""

    __slots__ = ("path", "mode", "owner", "_released")

    def __init__(self, path: str, mode: LockMode, owner: str) -> None:
        self.path = path
        self.mode = mode
        self.owner = owner
        self._released = False

    def __repr__(self) -> str:
        state = "released" if self._released else "held"
        return f"<Lock {self.mode.value} {self.path} by {self.owner} ({state})>"


class _PathLockState:
    """Holders and FIFO waiters for one path."""

    __slots__ = ("holders", "waiters")

    def __init__(self) -> None:
        self.holders: List[Lock] = []
        self.waiters: Deque[Tuple[Lock, Event]] = deque()

    def compatible(self, mode: LockMode) -> bool:
        if not self.holders:
            return True
        if mode is LockMode.EXCLUSIVE:
            return False
        return all(h.mode is LockMode.SHARED for h in self.holders)


class LockTable:
    """All advisory locks of one file system."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._paths: Dict[str, _PathLockState] = {}

    def _state(self, path: str) -> _PathLockState:
        state = self._paths.get(path)
        if state is None:
            state = _PathLockState()
            self._paths[path] = state
        return state

    def holders(self, path: str) -> List[Lock]:
        """Currently granted locks on ``path`` (copy)."""
        return list(self._paths.get(path, _PathLockState()).holders)

    def queue_len(self, path: str) -> int:
        """Number of blocked acquisitions on ``path``."""
        state = self._paths.get(path)
        return len(state.waiters) if state else 0

    def try_acquire(self, path: str, mode: LockMode, owner: str) -> Optional[Lock]:
        """Non-blocking acquire; ``None`` when the lock is unavailable.

        A path with queued waiters is treated as unavailable even for a
        compatible shared request, preserving FIFO fairness.
        """
        state = self._state(path)
        if state.waiters or not state.compatible(mode):
            return None
        lock = Lock(path, mode, owner)
        state.holders.append(lock)
        return lock

    def acquire(self, path: str, mode: LockMode, owner: str):
        """Generator: block until the lock is granted; returns the Lock."""
        state = self._state(path)
        if not state.waiters and state.compatible(mode):
            lock = Lock(path, mode, owner)
            state.holders.append(lock)
            return lock
        lock = Lock(path, mode, owner)
        granted = Event(self.env)
        state.waiters.append((lock, granted))
        yield granted
        return lock

    def release(self, lock: Lock) -> None:
        """Release a granted lock and grant as many waiters as now fit."""
        if lock._released:
            raise LockError(f"double release of {lock!r}")
        state = self._paths.get(lock.path)
        if state is None or lock not in state.holders:
            raise LockError(f"release of non-held {lock!r}")
        state.holders.remove(lock)
        lock._released = True
        # Grant in FIFO order while the head is compatible.
        while state.waiters:
            head_lock, head_event = state.waiters[0]
            if not state.compatible(head_lock.mode):
                break
            state.waiters.popleft()
            state.holders.append(head_lock)
            head_event.succeed(head_lock)
        if not state.holders and not state.waiters:
            del self._paths[lock.path]
