"""XFS-like node-local file system on the node's NVMe SSD model.

XFS is the paper's "fastest local storage solution": its relevant costs are
the SSD's bandwidth/latency plus small fixed metadata costs (journaled
creates/unlinks, extent allocation on growth). The model charges:

- ``open`` — dentry lookup; creating adds a journal transaction;
- ``write`` — extent allocation for newly grown extents, then the SSD
  write path (bandwidth-shared with other writers on the node — this is
  the coupling behind the linear growth in Fig. 5);
- ``read`` — the SSD read path;
- ``fsync`` — journal flush plus device cache flush;
- ``close``/``stat`` — in-memory costs.

XFS cannot move data between nodes: every handle must be used from the
node the file system is mounted on (enforced — cf. the paper's remark that
XFS-based workflows must collocate producer and consumer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.cluster.node import Node
from repro.errors import ConfigError, StorageError
from repro.storage.locks import LockTable
from repro.storage.posixfs import FileHandle, PosixFileSystem
from repro.units import mib, usec

__all__ = ["XFSConfig", "XFSFileSystem"]


@dataclass(frozen=True)
class XFSConfig:
    """Metadata-path costs of the XFS model (device costs live in SSDConfig)."""

    lookup_time: float = usec(3.0)
    create_journal_time: float = usec(25.0)
    unlink_journal_time: float = usec(20.0)
    close_time: float = usec(2.0)
    stat_time: float = usec(2.0)
    fsync_journal_time: float = usec(50.0)
    extent_alloc_time: float = usec(4.0)
    extent_size: int = mib(8)

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid values."""
        for name in (
            "lookup_time",
            "create_journal_time",
            "unlink_journal_time",
            "close_time",
            "stat_time",
            "fsync_journal_time",
            "extent_alloc_time",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.extent_size <= 0:
            raise ConfigError("extent_size must be positive")


class XFSFileSystem(PosixFileSystem):
    """One XFS mount on one node's local SSD."""

    kind = "xfs"

    def __init__(
        self,
        node: Node,
        config: Optional[XFSConfig] = None,
        store_data: bool = False,
    ) -> None:
        super().__init__(node.env, store_data=store_data)
        self.node = node
        self.config = config or XFSConfig()
        self.config.validate()
        self.locks = LockTable(node.env)

    # -- helpers -------------------------------------------------------------
    def _check_client(self, client: Optional[str]) -> None:
        if client is not None and client != self.node.node_id:
            raise StorageError(
                f"xfs on {self.node.node_id} is not reachable from {client}: "
                "node-local file systems cannot move data between nodes"
            )

    def _extents(self, nbytes: int) -> int:
        return -(-nbytes // self.config.extent_size) if nbytes else 0

    def _account_growth(self, delta: int) -> None:
        if delta >= 0:
            self.node.ssd.allocate(delta)
        else:
            self.node.ssd.release(-delta)

    # -- timing hooks -----------------------------------------------------------
    def _t_open(self, path: str, creating: bool, client: Optional[str]) -> Generator:
        self._check_client(client)
        cost = self.config.lookup_time
        if creating:
            cost += self.config.create_journal_time
        yield self.env.timeout(cost)
        return cost

    def _t_write(self, handle: FileHandle, nbytes: int) -> Generator:
        self._check_client(handle.client)
        start = self.env.now
        grow = max(handle.offset + nbytes - handle._inode.size, 0)
        if grow:
            yield self.env.timeout(self.config.extent_alloc_time * self._extents(grow))
        yield from self.node.ssd.write(nbytes)
        return self.env.now - start

    def _t_read(self, handle: FileHandle, nbytes: int) -> Generator:
        self._check_client(handle.client)
        return (yield from self.node.ssd.read(nbytes))

    def _t_close(self, handle: FileHandle) -> Generator:
        yield self.env.timeout(self.config.close_time)
        return self.config.close_time

    def _t_fsync(self, handle: FileHandle) -> Generator:
        start = self.env.now
        yield self.env.timeout(self.config.fsync_journal_time)
        # Device cache flush: modelled as a zero-byte write (latency only).
        yield from self.node.ssd.write(0)
        return self.env.now - start

    def _t_stat(self, path: str, client: Optional[str]) -> Generator:
        self._check_client(client)
        yield self.env.timeout(self.config.stat_time)
        return self.config.stat_time

    def _t_unlink(self, path: str, client: Optional[str]) -> Generator:
        self._check_client(client)
        yield self.env.timeout(self.config.unlink_journal_time)
        return self.config.unlink_journal_time
