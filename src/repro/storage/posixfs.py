"""POSIX-like namespace and file-handle layer shared by XFS and Lustre.

The namespace is a real hierarchical tree (directories, regular files,
``mkdir -p`` semantics, ENOENT/EEXIST/EISDIR errors) so workflow code using
these file systems behaves like code written against real POSIX. Timing is
delegated to subclasses through the ``_t_*`` generator hooks; the base class
never advances the clock itself.

Payload storage is optional: the simulated experiments move *sizes* (a
28 MiB STMV frame as an integer), while integration tests enable
``store_data=True`` and move real bytes end-to-end to validate protocol
correctness.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.errors import (
    FileExists,
    FileNotFound,
    InvalidHandle,
    IsADirectory,
    NotADirectory,
    StorageError,
)
from repro.sim.core import Environment

__all__ = ["FileStat", "FileHandle", "PosixFileSystem", "normalize"]


def normalize(path: str) -> str:
    """Normalize to an absolute, ``/``-separated path."""
    if not path:
        raise StorageError("empty path")
    if not path.startswith("/"):
        path = "/" + path
    norm = posixpath.normpath(path)
    return norm


@dataclass
class FileStat:
    """Subset of ``struct stat`` the workflows need."""

    path: str
    size: int
    is_dir: bool
    version: int  # bumped on every completed write; used by polling sync
    ctime: float
    mtime: float


class _Inode:
    """Internal node of the namespace tree."""

    __slots__ = ("name", "is_dir", "size", "payload", "children", "version",
                 "ctime", "mtime", "nlink")

    def __init__(self, name: str, is_dir: bool, now: float) -> None:
        self.name = name
        self.is_dir = is_dir
        self.size = 0
        self.payload: Optional[bytearray] = None
        self.children: Dict[str, "_Inode"] = {}
        self.version = 0
        self.ctime = now
        self.mtime = now
        self.nlink = 1  # open handles keep unlinked files alive


class FileHandle:
    """An open file description (offset + mode), as returned by ``open``.

    All data operations are generators; drive them with ``yield from`` from
    a simulation process. Reads return ``(nbytes, payload_or_None)``.
    """

    _WRITE_MODES = {"w", "a", "r+", "w+"}

    def __init__(
        self,
        fs: "PosixFileSystem",
        path: str,
        inode: _Inode,
        mode: str,
        client: Optional[str],
    ) -> None:
        self.fs = fs
        self.path = path
        self.mode = mode
        self.client = client
        self._inode = inode
        self._offset = inode.size if mode == "a" else 0
        self._open = True

    # -- guards ------------------------------------------------------------
    def _check_open(self) -> None:
        if not self._open:
            raise InvalidHandle(f"{self.path}: handle is closed")

    def _check_writable(self) -> None:
        self._check_open()
        if self.mode not in self._WRITE_MODES:
            raise InvalidHandle(f"{self.path}: opened read-only ({self.mode})")

    def _check_readable(self) -> None:
        self._check_open()
        if self.mode in ("w", "a"):
            raise InvalidHandle(f"{self.path}: opened write-only ({self.mode})")

    @property
    def closed(self) -> bool:
        """True once :meth:`close` completed."""
        return not self._open

    @property
    def offset(self) -> int:
        """Current file offset in bytes."""
        return self._offset

    def seek(self, offset: int) -> None:
        """Absolute seek (no device time — it only moves the offset)."""
        self._check_open()
        if offset < 0:
            raise StorageError(f"negative seek offset: {offset}")
        self._offset = offset

    # -- data plane -----------------------------------------------------------
    def write(self, nbytes: int, data: Optional[bytes] = None) -> Generator:
        """Write ``nbytes`` at the current offset; returns elapsed seconds.

        ``data`` (optional real payload) must match ``nbytes`` when given
        and is only retained when the file system stores payloads.
        """
        self._check_writable()
        if nbytes < 0:
            raise StorageError(f"negative write size: {nbytes}")
        if data is not None and len(data) != nbytes:
            raise StorageError(
                f"payload length {len(data)} != declared size {nbytes}"
            )
        elapsed = yield from self.fs._t_write(self, nbytes)
        end = self._offset + nbytes
        grow = end - self._inode.size
        if grow > 0:
            self.fs._account_growth(grow)
            self._inode.size = end
        if self.fs.store_data:
            if self._inode.payload is None:
                self._inode.payload = bytearray(self._inode.size)
            elif len(self._inode.payload) < self._inode.size:
                self._inode.payload.extend(
                    b"\0" * (self._inode.size - len(self._inode.payload))
                )
            if data is not None:
                self._inode.payload[self._offset:end] = data
        self._offset = end
        self._inode.version += 1
        self._inode.mtime = self.fs.env.now
        return elapsed

    def read(self, nbytes: Optional[int] = None) -> Generator:
        """Read up to ``nbytes`` (default: to EOF) from the current offset.

        Returns ``(count, payload)`` where payload is ``None`` unless the
        file system stores payloads.
        """
        self._check_readable()
        if nbytes is not None and nbytes < 0:
            raise StorageError(f"negative read size: {nbytes}")
        avail = max(self._inode.size - self._offset, 0)
        count = avail if nbytes is None else min(nbytes, avail)
        yield from self.fs._t_read(self, count)
        payload: Optional[bytes] = None
        if self.fs.store_data and self._inode.payload is not None:
            payload = bytes(self._inode.payload[self._offset:self._offset + count])
        self._offset += count
        return count, payload

    def fsync(self) -> Generator:
        """Force data to stable storage; returns elapsed seconds."""
        self._check_open()
        return (yield from self.fs._t_fsync(self))

    def close(self) -> Generator:
        """Close the handle; returns elapsed seconds."""
        if not self._open:
            return 0.0
        elapsed = yield from self.fs._t_close(self)
        self._open = False
        self._inode.nlink -= 1
        self.fs._reap(self._inode)
        return elapsed


class PosixFileSystem:
    """Namespace bookkeeping common to XFS and Lustre models.

    Subclasses implement the ``_t_*`` timing hooks (generators returning
    elapsed seconds) and may override :meth:`_account_growth` to track
    device capacity.
    """

    #: human-readable name used in traces ("xfs", "lustre")
    kind = "posix"

    def __init__(self, env: Environment, store_data: bool = False) -> None:
        self.env = env
        self.store_data = store_data
        self._root = _Inode("/", is_dir=True, now=env.now)

    # -- namespace helpers ------------------------------------------------------
    def _walk(self, path: str) -> Tuple[Optional[_Inode], _Inode, List[str]]:
        """Resolve ``path``; returns (inode_or_None, parent, parts)."""
        norm = normalize(path)
        if norm == "/":
            return self._root, self._root, []
        parts = norm.strip("/").split("/")
        parent = self._root
        for part in parts[:-1]:
            child = parent.children.get(part)
            if child is None:
                raise FileNotFound(f"{path}: no such directory component {part!r}")
            if not child.is_dir:
                raise NotADirectory(f"{path}: {part!r} is not a directory")
            parent = child
        return parent.children.get(parts[-1]), parent, parts

    def exists(self, path: str) -> bool:
        """True when ``path`` resolves (no device time: dcache hit)."""
        try:
            inode, _, _ = self._walk(path)
        except (FileNotFound, NotADirectory):
            return False
        return inode is not None

    def makedirs(self, path: str) -> None:
        """Create directories recursively; existing directories are fine."""
        norm = normalize(path)
        if norm == "/":
            return
        parent = self._root
        for part in norm.strip("/").split("/"):
            child = parent.children.get(part)
            if child is None:
                child = _Inode(part, is_dir=True, now=self.env.now)
                parent.children[part] = child
            elif not child.is_dir:
                raise NotADirectory(f"{path}: {part!r} is a regular file")
            parent = child

    def listdir(self, path: str) -> List[str]:
        """Names in a directory, sorted."""
        inode, _, _ = self._walk(path)
        if inode is None:
            raise FileNotFound(path)
        if not inode.is_dir:
            raise NotADirectory(path)
        return sorted(inode.children)

    # -- metadata plane (timed) ------------------------------------------------
    def open(self, path: str, mode: str = "r", client: Optional[str] = None) -> Generator:
        """Open (and with ``w``/``a``/``w+``, maybe create) a file.

        Generator returning a :class:`FileHandle`. Modes: ``r``, ``r+``,
        ``w`` (truncate/create), ``w+``, ``a`` (append/create), ``x``
        (exclusive create, returned handle is write-only).
        """
        if mode not in ("r", "r+", "w", "w+", "a", "x"):
            raise StorageError(f"unsupported open mode {mode!r}")
        inode, parent, parts = self._walk(path)
        creating = inode is None
        if inode is not None and inode.is_dir:
            raise IsADirectory(path)
        if mode in ("r", "r+") and creating:
            raise FileNotFound(path)
        if mode == "x":
            if not creating:
                raise FileExists(path)
            mode = "w"
        yield from self._t_open(path, creating=creating, client=client)
        if creating:
            inode = _Inode(parts[-1], is_dir=False, now=self.env.now)
            parent.children[parts[-1]] = inode
        assert inode is not None
        if mode in ("w", "w+") and inode.size:
            self._account_growth(-inode.size)
            inode.size = 0
            inode.payload = bytearray() if self.store_data else None
            inode.version += 1
        inode.nlink += 1
        return FileHandle(self, normalize(path), inode, mode, client)

    def stat(self, path: str, client: Optional[str] = None) -> Generator:
        """Timed stat; returns a :class:`FileStat`."""
        yield from self._t_stat(path, client=client)
        inode, _, _ = self._walk(path)
        if inode is None:
            raise FileNotFound(path)
        return FileStat(
            path=normalize(path),
            size=inode.size,
            is_dir=inode.is_dir,
            version=inode.version,
            ctime=inode.ctime,
            mtime=inode.mtime,
        )

    def unlink(self, path: str, client: Optional[str] = None) -> Generator:
        """Timed unlink of a regular file."""
        inode, parent, parts = self._walk(path)
        if inode is None:
            raise FileNotFound(path)
        if inode.is_dir:
            raise IsADirectory(path)
        yield from self._t_unlink(path, client=client)
        del parent.children[parts[-1]]
        inode.nlink -= 1
        self._reap(inode)
        return None

    # -- accounting hooks --------------------------------------------------------
    def _account_growth(self, delta: int) -> None:
        """Capacity accounting hook; default: unlimited."""

    def _reap(self, inode: _Inode) -> None:
        """Free space when the last reference to an unlinked file drops."""
        if inode.nlink <= 0 and not inode.is_dir:
            self._account_growth(-inode.size)
            inode.size = 0
            inode.payload = None

    # -- timing hooks (subclass responsibility) -----------------------------------
    def _t_open(self, path: str, creating: bool, client: Optional[str]) -> Generator:
        raise NotImplementedError

    def _t_write(self, handle: FileHandle, nbytes: int) -> Generator:
        raise NotImplementedError

    def _t_read(self, handle: FileHandle, nbytes: int) -> Generator:
        raise NotImplementedError

    def _t_close(self, handle: FileHandle) -> Generator:
        raise NotImplementedError

    def _t_fsync(self, handle: FileHandle) -> Generator:
        raise NotImplementedError

    def _t_stat(self, path: str, client: Optional[str]) -> Generator:
        raise NotImplementedError

    def _t_unlink(self, path: str, client: Optional[str]) -> Generator:
        raise NotImplementedError
