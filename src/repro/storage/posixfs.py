"""POSIX-like namespace and file-handle layer shared by XFS and Lustre.

The namespace is a real hierarchical tree (directories, regular files,
``mkdir -p`` semantics, ENOENT/EEXIST/EISDIR errors) so workflow code using
these file systems behaves like code written against real POSIX. Timing is
delegated to subclasses through the ``_t_*`` generator hooks; the base class
never advances the clock itself.

Payload storage is optional: the simulated experiments move *sizes* (a
28 MiB STMV frame as an integer), while integration tests enable
``store_data=True`` and move real bytes end-to-end to validate protocol
correctness.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.errors import (
    FileExists,
    FileNotFound,
    InvalidHandle,
    IsADirectory,
    NotADirectory,
    StorageError,
)
from repro.sim.core import Environment

__all__ = ["FileStat", "FileHandle", "PosixFileSystem", "normalize"]


def normalize(path: str) -> str:
    """Normalize to an absolute, ``/``-separated path."""
    if not path:
        raise StorageError("empty path")
    if not path.startswith("/"):
        path = "/" + path
    norm = posixpath.normpath(path)
    return norm


@dataclass
class FileStat:
    """Subset of ``struct stat`` the workflows need."""

    path: str
    size: int
    is_dir: bool
    version: int  # bumped on every completed write; used by polling sync
    ctime: float
    mtime: float


class _Inode:
    """Internal node of the namespace tree."""

    __slots__ = ("name", "is_dir", "size", "payload", "children", "version",
                 "ctime", "mtime", "nlink", "intended_size", "corrupt", "prev")

    def __init__(self, name: str, is_dir: bool, now: float) -> None:
        self.name = name
        self.is_dir = is_dir
        self.size = 0
        self.payload: Optional[bytearray] = None
        self.children: Dict[str, "_Inode"] = {}
        self.version = 0
        self.ctime = now
        self.mtime = now
        self.nlink = 1  # open handles keep unlinked files alive
        self.intended_size = 0   # declared size when a torn write shortened us
        self.corrupt = False     # a bit_corrupt window damaged the payload
        self.prev: Optional[Tuple[int, int, float]] = None  # (size, version,
        # mtime) before the last metadata change, for stale-stat windows


class FileHandle:
    """An open file description (offset + mode), as returned by ``open``.

    All data operations are generators; drive them with ``yield from`` from
    a simulation process. Reads return ``(nbytes, payload_or_None)``.
    """

    _WRITE_MODES = {"w", "a", "r+", "w+"}

    def __init__(
        self,
        fs: "PosixFileSystem",
        path: str,
        inode: _Inode,
        mode: str,
        client: Optional[str],
    ) -> None:
        self.fs = fs
        self.path = path
        self.mode = mode
        self.client = client
        self._inode = inode
        self._offset = inode.size if mode == "a" else 0
        self._open = True

    # -- guards ------------------------------------------------------------
    def _check_open(self) -> None:
        if not self._open:
            raise InvalidHandle(f"{self.path}: handle is closed")

    def _check_writable(self) -> None:
        self._check_open()
        if self.mode not in self._WRITE_MODES:
            raise InvalidHandle(f"{self.path}: opened read-only ({self.mode})")

    def _check_readable(self) -> None:
        self._check_open()
        if self.mode in ("w", "a"):
            raise InvalidHandle(f"{self.path}: opened write-only ({self.mode})")

    @property
    def closed(self) -> bool:
        """True once :meth:`close` completed."""
        return not self._open

    @property
    def offset(self) -> int:
        """Current file offset in bytes."""
        return self._offset

    def seek(self, offset: int) -> None:
        """Absolute seek (no device time — it only moves the offset)."""
        self._check_open()
        if offset < 0:
            raise StorageError(f"negative seek offset: {offset}")
        self._offset = offset

    # -- data plane -----------------------------------------------------------
    def write(self, nbytes: int, data: Optional[bytes] = None) -> Generator:
        """Write ``nbytes`` at the current offset; returns elapsed seconds.

        ``data`` (optional real payload) must match ``nbytes`` when given
        and is only retained when the file system stores payloads.
        """
        self._check_writable()
        if nbytes < 0:
            raise StorageError(f"negative write size: {nbytes}")
        if data is not None and len(data) != nbytes:
            raise StorageError(
                f"payload length {len(data)} != declared size {nbytes}"
            )
        fs = self.fs
        inode = self._inode
        # Integrity windows (armed by the fault injector): a torn write
        # lands only a fraction of its declared bytes — the "producer
        # crashed mid-frame" state. The application-visible contract is
        # unchanged (offset advances by the declared size); only the
        # persisted bytes are short.
        landed = nbytes
        torn = False
        if fs._torn_fraction is not None:
            landed = int(nbytes * fs._torn_fraction)
            torn = landed < nbytes
        elapsed = yield from fs._t_write(self, landed)
        inode.prev = (inode.size, inode.version, inode.mtime)
        end = self._offset + landed
        grow = end - inode.size
        if grow > 0:
            fs._account_growth(grow)
            inode.size = end
        if fs.store_data:
            if inode.payload is None:
                inode.payload = bytearray(inode.size)
            elif len(inode.payload) < inode.size:
                inode.payload.extend(
                    b"\0" * (inode.size - len(inode.payload))
                )
            if data is not None:
                inode.payload[self._offset:end] = data[:landed]
        if torn:
            inode.intended_size = max(
                inode.intended_size, self._offset + nbytes
            )
            fs._torn.setdefault(self.path, []).append(
                (inode, self._offset, nbytes, data)
            )
        if fs._corrupt_rate > 0.0 and fs._corrupt_draw() < fs._corrupt_rate:
            inode.corrupt = True
            if fs.store_data and inode.payload is not None and end > self._offset:
                inode.payload[self._offset] ^= 0xFF  # flip a payload byte
        self._offset += nbytes
        inode.version += 1
        inode.mtime = fs.env.now
        return elapsed

    def read(self, nbytes: Optional[int] = None) -> Generator:
        """Read up to ``nbytes`` (default: to EOF) from the current offset.

        Returns ``(count, payload)`` where payload is ``None`` unless the
        file system stores payloads.
        """
        self._check_readable()
        if nbytes is not None and nbytes < 0:
            raise StorageError(f"negative read size: {nbytes}")
        avail = max(self._inode.size - self._offset, 0)
        count = avail if nbytes is None else min(nbytes, avail)
        yield from self.fs._t_read(self, count)
        payload: Optional[bytes] = None
        if self.fs.store_data and self._inode.payload is not None:
            payload = bytes(self._inode.payload[self._offset:self._offset + count])
        self._offset += count
        return count, payload

    def fsync(self) -> Generator:
        """Force data to stable storage; returns elapsed seconds."""
        self._check_open()
        return (yield from self.fs._t_fsync(self))

    def close(self) -> Generator:
        """Close the handle; returns elapsed seconds."""
        if not self._open:
            return 0.0
        elapsed = yield from self.fs._t_close(self)
        self._open = False
        self._inode.nlink -= 1
        self.fs._reap(self._inode)
        return elapsed


class PosixFileSystem:
    """Namespace bookkeeping common to XFS and Lustre models.

    Subclasses implement the ``_t_*`` timing hooks (generators returning
    elapsed seconds) and may override :meth:`_account_growth` to track
    device capacity.
    """

    #: human-readable name used in traces ("xfs", "lustre")
    kind = "posix"

    def __init__(self, env: Environment, store_data: bool = False) -> None:
        self.env = env
        self.store_data = store_data
        self._root = _Inode("/", is_dir=True, now=env.now)
        # Integrity-fault state, armed/disarmed by the fault injector.
        self._torn_fraction: Optional[float] = None
        self._torn: Dict[str, List[Tuple[_Inode, int, int, Optional[bytes]]]] = {}
        self._corrupt_rate = 0.0
        self._corrupt_draw = None  # zero-arg callable -> uniform [0, 1)

    # -- namespace helpers ------------------------------------------------------
    def _walk(self, path: str) -> Tuple[Optional[_Inode], _Inode, List[str]]:
        """Resolve ``path``; returns (inode_or_None, parent, parts)."""
        norm = normalize(path)
        if norm == "/":
            return self._root, self._root, []
        parts = norm.strip("/").split("/")
        parent = self._root
        for part in parts[:-1]:
            child = parent.children.get(part)
            if child is None:
                raise FileNotFound(f"{path}: no such directory component {part!r}")
            if not child.is_dir:
                raise NotADirectory(f"{path}: {part!r} is not a directory")
            parent = child
        return parent.children.get(parts[-1]), parent, parts

    def exists(self, path: str) -> bool:
        """True when ``path`` resolves (no device time: dcache hit)."""
        try:
            inode, _, _ = self._walk(path)
        except (FileNotFound, NotADirectory):
            return False
        return inode is not None

    def makedirs(self, path: str) -> None:
        """Create directories recursively; existing directories are fine."""
        norm = normalize(path)
        if norm == "/":
            return
        parent = self._root
        for part in norm.strip("/").split("/"):
            child = parent.children.get(part)
            if child is None:
                child = _Inode(part, is_dir=True, now=self.env.now)
                parent.children[part] = child
            elif not child.is_dir:
                raise NotADirectory(f"{path}: {part!r} is a regular file")
            parent = child

    def listdir(self, path: str) -> List[str]:
        """Names in a directory, sorted."""
        inode, _, _ = self._walk(path)
        if inode is None:
            raise FileNotFound(path)
        if not inode.is_dir:
            raise NotADirectory(path)
        return sorted(inode.children)

    # -- metadata plane (timed) ------------------------------------------------
    def open(self, path: str, mode: str = "r", client: Optional[str] = None) -> Generator:
        """Open (and with ``w``/``a``/``w+``, maybe create) a file.

        Generator returning a :class:`FileHandle`. Modes: ``r``, ``r+``,
        ``w`` (truncate/create), ``w+``, ``a`` (append/create), ``x``
        (exclusive create, returned handle is write-only).
        """
        if mode not in ("r", "r+", "w", "w+", "a", "x"):
            raise StorageError(f"unsupported open mode {mode!r}")
        inode, parent, parts = self._walk(path)
        creating = inode is None
        if inode is not None and inode.is_dir:
            raise IsADirectory(path)
        if mode in ("r", "r+") and creating:
            raise FileNotFound(path)
        if mode == "x":
            if not creating:
                raise FileExists(path)
            mode = "w"
        yield from self._t_open(path, creating=creating, client=client)
        if creating:
            inode = _Inode(parts[-1], is_dir=False, now=self.env.now)
            parent.children[parts[-1]] = inode
        assert inode is not None
        if mode in ("w", "w+") and inode.size:
            inode.prev = (inode.size, inode.version, inode.mtime)
            self._account_growth(-inode.size)
            inode.size = 0
            inode.payload = bytearray() if self.store_data else None
            inode.version += 1
        if mode in ("w", "w+"):
            # A truncating rewrite supersedes any earlier torn/corrupt state.
            inode.intended_size = 0
            inode.corrupt = False
            self._torn.pop(normalize(path), None)
        inode.nlink += 1
        return FileHandle(self, normalize(path), inode, mode, client)

    def stat(self, path: str, client: Optional[str] = None) -> Generator:
        """Timed stat; returns a :class:`FileStat`.

        During a ``stale_metadata`` window (:meth:`_metadata_lag` > 0,
        Lustre only) a file modified less than the lag ago reports the
        metadata it had *before* that modification — the client-cache
        size/mtime lag that defeats polling-based synchronization.
        """
        yield from self._t_stat(path, client=client)
        inode, _, _ = self._walk(path)
        if inode is None:
            raise FileNotFound(path)
        size, version, mtime = inode.size, inode.version, inode.mtime
        lag = self._metadata_lag()
        if (lag > 0.0 and inode.prev is not None
                and self.env.now - inode.mtime < lag):
            size, version, mtime = inode.prev
        return FileStat(
            path=normalize(path),
            size=size,
            is_dir=inode.is_dir,
            version=version,
            ctime=inode.ctime,
            mtime=mtime,
        )

    def unlink(self, path: str, client: Optional[str] = None) -> Generator:
        """Timed unlink of a regular file."""
        inode, parent, parts = self._walk(path)
        if inode is None:
            raise FileNotFound(path)
        if inode.is_dir:
            raise IsADirectory(path)
        yield from self._t_unlink(path, client=client)
        del parent.children[parts[-1]]
        inode.nlink -= 1
        self._reap(inode)
        return None

    # -- integrity-fault hooks ---------------------------------------------------
    def arm_torn_writes(self, fraction: float) -> None:
        """Start a torn-write window: writes land ``fraction`` of their bytes."""
        if not 0.0 < fraction < 1.0:
            raise StorageError(
                f"torn-write fraction must be in (0, 1), got {fraction}"
            )
        self._torn_fraction = fraction

    def disarm_torn_writes(self, repair: bool = False) -> int:
        """End the torn-write window; returns how many writes were repaired.

        ``repair=True`` replays every torn write in full (size, payload,
        version) — the "producer re-publishes after restart" recovery of
        DYAD's staging directory. ``repair=False`` leaves files short and
        merely forgets the torn marks: XFS journal replay truncating to
        the last consistent extent, or Lustre exposing the torn file
        as-is until the sync barrier.
        """
        self._torn_fraction = None
        torn, self._torn = self._torn, {}
        repaired = 0
        if not repair:
            return repaired
        for entries in torn.values():
            for inode, offset, nbytes, data in entries:
                if inode.nlink <= 0:
                    continue  # unlinked before the producer could recover
                end = offset + nbytes
                grow = end - inode.size
                if grow > 0:
                    self._account_growth(grow)
                    inode.size = end
                if self.store_data:
                    if inode.payload is None:
                        inode.payload = bytearray(inode.size)
                    elif len(inode.payload) < inode.size:
                        inode.payload.extend(
                            b"\0" * (inode.size - len(inode.payload))
                        )
                    if data is not None:
                        inode.payload[offset:end] = data
                inode.intended_size = 0
                inode.version += 1
                inode.mtime = self.env.now
                repaired += 1
        return repaired

    def arm_corruption(self, rate: float, draw) -> None:
        """Start a bit-corruption window: each write is damaged with
        probability ``rate``, decided by ``draw()`` (a seeded stream)."""
        if not 0.0 < rate <= 1.0:
            raise StorageError(
                f"corruption rate must be in (0, 1], got {rate}"
            )
        self._corrupt_rate = rate
        self._corrupt_draw = draw

    def disarm_corruption(self) -> None:
        """End the bit-corruption window (damaged files stay damaged)."""
        self._corrupt_rate = 0.0
        self._corrupt_draw = None

    def is_corrupt(self, path: str) -> bool:
        """True when a corruption window damaged this file's payload."""
        try:
            inode, _, _ = self._walk(path)
        except (FileNotFound, NotADirectory):
            return False
        return inode is not None and inode.corrupt

    def is_torn(self, path: str) -> bool:
        """True when the file is still short of a torn write's declared size."""
        try:
            inode, _, _ = self._walk(path)
        except (FileNotFound, NotADirectory):
            return False
        return inode is not None and inode.size < inode.intended_size

    def _metadata_lag(self) -> float:
        """Stale-metadata window in seconds (0 = always fresh); Lustre
        overrides this to expose its client-cache lag."""
        return 0.0

    # -- accounting hooks --------------------------------------------------------
    def _account_growth(self, delta: int) -> None:
        """Capacity accounting hook; default: unlimited."""

    def _reap(self, inode: _Inode) -> None:
        """Free space when the last reference to an unlinked file drops."""
        if inode.nlink <= 0 and not inode.is_dir:
            self._account_growth(-inode.size)
            inode.size = 0
            inode.payload = None

    # -- timing hooks (subclass responsibility) -----------------------------------
    def _t_open(self, path: str, creating: bool, client: Optional[str]) -> Generator:
        raise NotImplementedError

    def _t_write(self, handle: FileHandle, nbytes: int) -> Generator:
        raise NotImplementedError

    def _t_read(self, handle: FileHandle, nbytes: int) -> Generator:
        raise NotImplementedError

    def _t_close(self, handle: FileHandle) -> Generator:
        raise NotImplementedError

    def _t_fsync(self, handle: FileHandle) -> Generator:
        raise NotImplementedError

    def _t_stat(self, path: str, client: Optional[str]) -> Generator:
        raise NotImplementedError

    def _t_unlink(self, path: str, client: Optional[str]) -> Generator:
        raise NotImplementedError
