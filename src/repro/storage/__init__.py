"""Simulated storage systems: the POSIX layer, XFS, Lustre, and file locks.

The paper compares three data-management paths; two of them are plain file
systems accessed "using POSIX APIs". This package provides:

- :mod:`repro.storage.posixfs` — the shared POSIX-like namespace and
  file-handle machinery both file systems implement;
- :mod:`repro.storage.xfs` — a node-local XFS-like file system on the
  node's NVMe SSD model;
- :mod:`repro.storage.lustre` — a Lustre-like parallel file system with a
  metadata server (MDS), object storage servers (OSS) fronting object
  storage targets (OST), striping, and cross-client contention;
- :mod:`repro.storage.locks` — advisory whole-file reader/writer locks
  (DYAD's flock fast-path synchronization uses these).
"""

from repro.storage.locks import LockMode, LockTable
from repro.storage.lustre import (
    LustreConfig,
    LustreFileSystem,
    LustreServers,
)
from repro.storage.posixfs import FileHandle, FileStat, PosixFileSystem
from repro.storage.xfs import XFSConfig, XFSFileSystem

__all__ = [
    "LockMode",
    "LockTable",
    "LustreConfig",
    "LustreFileSystem",
    "LustreServers",
    "FileHandle",
    "FileStat",
    "PosixFileSystem",
    "XFSConfig",
    "XFSFileSystem",
]
