"""Lustre-like parallel file system model.

Architecture (matching real Lustre at the granularity the paper's findings
depend on):

- one **MDS** (metadata server) services open/create, close-commit, stat,
  and unlink RPCs through a FIFO queue — the fixed small-file costs that
  make Lustre slow for JAC-sized frames (Figs. 6, 7, 11);
- several **OSS** (object storage servers), each fronting a set of **OST**
  devices. An OSS has an aggregate disk bandwidth shared by every bulk RPC
  it is servicing — the cross-client contention that widens DYAD's lead as
  model size grows (Fig. 8);
- **striping**: a file is striped round-robin over ``stripe_count`` OSTs in
  ``stripe_size`` chunks, so large files engage several servers in parallel
  — the "inherent parallelization" visible in the Fig. 10 call trees;
- bulk data moves over the cluster :class:`~repro.cluster.network.Fabric`
  in ``rpc_size`` chunks with ``max_rpcs_in_flight`` pipelining, as in the
  real client.

Servers are attached to the fabric as pseudo-nodes (``lustre-mds``,
``lustre-oss0`` …), so client traffic to Lustre shares the client NIC with
everything else the node does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.cluster.network import Fabric
from repro.errors import ConfigError
from repro.sim.core import Environment
from repro.sim.resources import Resource, SharedBandwidth
from repro.sim.rng import RngStreams
from repro.storage.locks import LockTable
from repro.storage.posixfs import FileHandle, PosixFileSystem, normalize
from repro.units import gb_per_s, mb_per_s, mib, usec

__all__ = ["LustreConfig", "LustreServers", "LustreFileSystem"]


@dataclass(frozen=True)
class LustreConfig:
    """Calibration constants of the Lustre model.

    Defaults approximate a mid-size HDD-backed Lustre appliance of the
    Corona era reachable over the cluster fabric.
    """

    # metadata path
    mds_service: float = usec(150.0)       # per metadata RPC at the MDS
    mds_capacity: int = 4                  # concurrent MDS service threads
    client_overhead: float = usec(50.0)    # llite + LDLM lock handling per op

    # data path. Writes and reads are asymmetric on purpose: client
    # write-back caching and grants absorb writes near wire speed, while
    # consumer reads are cold (the data was produced by another node) and
    # bottleneck on the OST spindles. Cold reads additionally have a
    # two-regime per-stream profile: the first ``read_burst_bytes`` of a
    # stream come from OSS read-ahead/cache at ``read_burst_bandwidth``;
    # beyond that the stream drops to the sustained spindle rate
    # ``read_stream_bandwidth``. This is what makes small (JAC) frames
    # latency-bound but large (STMV) frames stream-bound — the mechanism
    # behind the widening consumption gap of Fig. 8b.
    n_oss: int = 2                         # object storage servers
    osts_per_oss: int = 8                  # OSTs behind each OSS
    oss_write_bandwidth: float = gb_per_s(2.0)   # aggregate absorb per OSS
    ost_write_bandwidth: float = gb_per_s(1.0)   # per-flow write ceiling
    oss_read_bandwidth: float = gb_per_s(2.0)    # aggregate cold-read per OSS
    read_burst_bytes: int = mib(1)               # read-ahead window per stream
    read_burst_bandwidth: float = mb_per_s(600.0)  # cache-burst rate
    read_stream_bandwidth: float = mb_per_s(150.0)  # sustained spindle rate
    oss_capacity: int = 32                 # concurrent bulk RPCs per OSS
    rpc_size: int = mib(1)                 # bulk RPC granularity
    rpc_overhead: float = usec(120.0)      # per bulk RPC fixed cost
    max_rpcs_in_flight: int = 8            # client-side pipelining window

    # striping
    stripe_size: int = mib(1)
    stripe_count: int = 2

    # run-to-run variability from shared-facility interference
    interference_cv: float = 0.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid values."""
        if self.mds_service < 0 or self.client_overhead < 0 or self.rpc_overhead < 0:
            raise ConfigError("service times must be non-negative")
        if self.mds_capacity < 1 or self.oss_capacity < 1:
            raise ConfigError("server capacities must be >= 1")
        if self.n_oss < 1 or self.osts_per_oss < 1:
            raise ConfigError("need at least one OSS and one OST")
        if min(self.oss_write_bandwidth, self.ost_write_bandwidth,
               self.oss_read_bandwidth, self.read_burst_bandwidth,
               self.read_stream_bandwidth) <= 0:
            raise ConfigError("bandwidths must be positive")
        if self.read_burst_bytes < 0:
            raise ConfigError("read_burst_bytes must be non-negative")
        if self.rpc_size <= 0 or self.stripe_size <= 0:
            raise ConfigError("rpc_size and stripe_size must be positive")
        if self.stripe_count < 1:
            raise ConfigError("stripe_count must be >= 1")
        if self.max_rpcs_in_flight < 1:
            raise ConfigError("max_rpcs_in_flight must be >= 1")
        if self.interference_cv < 0:
            raise ConfigError("interference_cv must be non-negative")


class _OSS:
    """One object storage server: a service queue + asymmetric disk channels.

    On the fluid tiers the disk channels live on the cluster-wide
    :class:`~repro.sim.fluid.FluidNetwork` (preserving the per-OST write
    cap as a per-flow cap); the RPC service queue stays an exact-tier
    :class:`Resource` either way — queueing is protocol, not byte movement.
    """

    def __init__(self, env: Environment, index: int, config: LustreConfig,
                 fluid=None) -> None:
        self.node_id = f"lustre-oss{index}"
        self.queue = Resource(env, config.oss_capacity)
        if fluid is not None:
            self.write_disk = fluid.link(
                config.oss_write_bandwidth,
                per_flow_cap=config.ost_write_bandwidth,
                label=f"{self.node_id}.write",
            )
            self.read_disk = fluid.link(config.oss_read_bandwidth,
                                        label=f"{self.node_id}.read")
        else:
            self.write_disk = SharedBandwidth(
                env, config.oss_write_bandwidth,
                per_flow_cap=config.ost_write_bandwidth
            )
            self.read_disk = SharedBandwidth(env, config.oss_read_bandwidth)


class LustreServers:
    """The server side of the file system, attachable to a fabric."""

    def __init__(
        self,
        env: Environment,
        fabric: Fabric,
        config: Optional[LustreConfig] = None,
        rng: Optional[RngStreams] = None,
    ) -> None:
        self.config = config or LustreConfig()
        self.config.validate()
        self.env = env
        self.fabric = fabric
        self.rng = rng or RngStreams(0)
        self.mds_id = "lustre-mds"
        fabric.attach(self.mds_id)
        self.mds = Resource(env, self.config.mds_capacity)
        self.oss: List[_OSS] = []
        for i in range(self.config.n_oss):
            server = _OSS(env, i, self.config, fluid=fabric.fluid)
            fabric.attach(server.node_id)
            self.oss.append(server)
        self.n_osts = self.config.n_oss * self.config.osts_per_oss
        self.mds_factor = 1.0  # fault-injection slowdown on metadata service
        # ``stale_metadata`` window: stats of files modified less than this
        # many seconds ago report pre-modification size/mtime (client-cache
        # coherence lag). 0 = always fresh.
        self.stale_lag = 0.0

    # -- fault injection -----------------------------------------------------
    def _fault_targets(self, target: str) -> tuple:
        """Resolve a degrade/restore selector → (touch_mds, [oss indices])."""
        if target == "":
            return True, list(range(len(self.oss)))
        if target == "mds":
            return True, []
        if target.startswith("oss"):
            try:
                index = int(target[3:])
            except ValueError:
                raise ConfigError(f"bad Lustre target {target!r}") from None
            if not 0 <= index < len(self.oss):
                raise ConfigError(f"no such OSS {target!r} (have {len(self.oss)})")
            return False, [index]
        raise ConfigError(f"bad Lustre target {target!r}")

    def degrade(self, factor: float, target: str = "") -> None:
        """Slow down servers by ``factor`` (fault injection).

        ``target`` selects what degrades: ``""`` (all servers), ``"mds"``
        (metadata service time multiplied), or ``"oss<i>"`` (that server's
        disk channels throttled). Models an overloaded/failing appliance —
        the shared-facility interference the paper's Lustre numbers are
        exposed to at scale.
        """
        if factor < 1.0:
            raise ValueError(f"degrade factor must be >= 1, got {factor}")
        cfg = self.config
        touch_mds, indices = self._fault_targets(target)
        if touch_mds:
            self.mds_factor = float(factor)
        for i in indices:
            server = self.oss[i]
            server.write_disk.set_bandwidth(cfg.oss_write_bandwidth / factor)
            server.read_disk.set_bandwidth(cfg.oss_read_bandwidth / factor)

    def restore(self, target: str = "") -> None:
        """Undo a prior :meth:`degrade` for ``target`` (same selectors)."""
        cfg = self.config
        touch_mds, indices = self._fault_targets(target)
        if touch_mds:
            self.mds_factor = 1.0
        for i in indices:
            server = self.oss[i]
            server.write_disk.set_bandwidth(cfg.oss_write_bandwidth)
            server.read_disk.set_bandwidth(cfg.oss_read_bandwidth)

    def oss_for_ost(self, ost_index: int) -> _OSS:
        """The OSS fronting a given OST (block assignment)."""
        return self.oss[(ost_index // self.config.osts_per_oss) % len(self.oss)]

    def channels(self):
        """Every OSS disk channel, for kernel-health aggregation."""
        for server in self.oss:
            yield server.write_disk
            yield server.read_disk

    # -- telemetry -----------------------------------------------------------
    def attach_metrics(self, timeline) -> None:
        """Meter the servers: ``lustre.mds.rpcs`` occupancy plus, per OSS,
        ``lustre.oss{i}.rpcs`` (in-flight bulk RPCs) and the
        ``lustre.oss{i}.write`` / ``.read`` disk-channel gauge families.
        """
        self.mds.attach_metrics(timeline, "lustre.mds.rpcs")
        for i, server in enumerate(self.oss):
            server.queue.attach_metrics(timeline, f"lustre.oss{i}.rpcs")
            server.write_disk.attach_metrics(timeline, f"lustre.oss{i}.write")
            server.read_disk.attach_metrics(timeline, f"lustre.oss{i}.read")

    def _interfere(self, stream: str, base: float) -> float:
        if self.config.interference_cv == 0.0:
            return base
        return self.rng.jitter(stream, base, self.config.interference_cv)

    def _stream_floor(self, nbytes: int) -> float:
        """Minimum time to stream ``nbytes`` from one OST (burst + sustained)."""
        cfg = self.config
        burst = min(nbytes, cfg.read_burst_bytes)
        rest = nbytes - burst
        return burst / cfg.read_burst_bandwidth + rest / cfg.read_stream_bandwidth

    # -- RPC primitives ------------------------------------------------------
    def mds_rpc(self, client: str) -> Generator:
        """Generator: round trip to the MDS including queueing; returns elapsed."""
        start = self.env.now
        yield from self.fabric.message(client, self.mds_id)
        service = self._interfere("lustre.mds", self.config.mds_service)
        if self.mds_factor != 1.0:
            service *= self.mds_factor
        yield from self.mds.acquire(service)
        yield from self.fabric.message(self.mds_id, client)
        return self.env.now - start

    def bulk_rpcs(self, client: str, ost_index: int, nbytes: int, write: bool) -> Generator:
        """Generator: move ``nbytes`` between ``client`` and one OST.

        Chunks into bulk RPCs of ``rpc_size``, pipelined ``max_rpcs_in_flight``
        deep; each chunk pays the RPC fixed cost, a fabric transfer, and a
        bandwidth-shared pass through the owning OSS's disks.
        """
        if nbytes <= 0:
            return 0.0
        cfg = self.config
        server = self.oss_for_ost(ost_index)
        start = self.env.now
        n_rpcs = -(-nbytes // cfg.rpc_size)
        # Fixed per-RPC costs overlap within the in-flight window.
        serialized_rpcs = -(-n_rpcs // cfg.max_rpcs_in_flight)
        overhead = self._interfere(
            "lustre.rpc", cfg.rpc_overhead * serialized_rpcs
        )
        yield self.env.timeout(overhead)
        slot = yield from _held(server.queue)
        try:
            if write:
                yield from self.fabric.transfer(client, server.node_id, nbytes)
                yield server.write_disk.transfer(nbytes)
            else:
                # Two constraints bound a cold read: sharing of the OSS's
                # aggregate bandwidth, and the per-stream burst/sustained
                # floor. Charge the aggregate-shared transfer, then pad up
                # to the stream floor if the spindles are the bottleneck.
                disk_start = self.env.now
                yield server.read_disk.transfer(nbytes)
                elapsed = self.env.now - disk_start
                floor = self._stream_floor(nbytes)
                if elapsed < floor:
                    yield self.env.timeout(floor - elapsed)
                yield from self.fabric.transfer(server.node_id, client, nbytes)
        finally:
            server.queue.release(slot)
        return self.env.now - start


def _held(resource: Resource):
    """Generator: acquire a resource slot and return the request token."""
    req = resource.request()
    yield req
    return req


class LustreFileSystem(PosixFileSystem):
    """The client-visible file system: one global namespace, many clients.

    Pass the calling node's id as ``client`` to every operation (the
    workflow layer does this automatically); data then flows over that
    node's NIC.
    """

    kind = "lustre"

    def __init__(self, servers: LustreServers, store_data: bool = False) -> None:
        super().__init__(servers.env, store_data=store_data)
        self.servers = servers
        self.config = servers.config
        self.locks = LockTable(servers.env)
        self._next_ost = 0

    def _metadata_lag(self) -> float:
        return self.servers.stale_lag

    # -- striping ------------------------------------------------------------
    def _layout(self, path: str) -> int:
        """First OST index of a file's stripe layout (round-robin by path)."""
        digest = 0
        for ch in normalize(path).encode():
            digest = (digest * 131 + ch) % 1_000_003
        return digest % self.servers.n_osts

    def _stripe_split(self, path: str, nbytes: int) -> List[tuple]:
        """Split a contiguous extent over the stripe OSTs.

        Returns ``[(ost_index, bytes), …]`` — one entry per engaged OST.
        Interleaving detail below stripe granularity is irrelevant to
        timing, so each OST's share is its total across the extent.
        """
        cfg = self.config
        first = self._layout(path)
        if nbytes <= 0:
            return []
        n_stripes = min(cfg.stripe_count, -(-nbytes // cfg.stripe_size))
        shares = [0] * n_stripes
        full, rem = divmod(nbytes, cfg.stripe_size)
        for i in range(n_stripes):
            shares[i] = (full // n_stripes) * cfg.stripe_size
        # distribute leftover stripe-size blocks and the tail
        leftover = (full % n_stripes) * cfg.stripe_size + rem
        idx = 0
        while leftover > 0:
            take = min(cfg.stripe_size, leftover)
            shares[idx % n_stripes] += take
            leftover -= take
            idx += 1
        return [
            ((first + i) % self.servers.n_osts, share)
            for i, share in enumerate(shares)
            if share > 0
        ]

    # -- timing hooks -------------------------------------------------------------
    def _require_client(self, client: Optional[str]) -> str:
        if client is None:
            raise ConfigError(
                "lustre operations need the calling node id (client=...)"
            )
        return client

    def _t_open(self, path: str, creating: bool, client: Optional[str]) -> Generator:
        node = self._require_client(client)
        start = self.env.now
        yield self.env.timeout(self.config.client_overhead)
        yield from self.servers.mds_rpc(node)
        if creating:
            # Layout allocation: a second MDS round trip (LOV EA write).
            yield from self.servers.mds_rpc(node)
        return self.env.now - start

    def _t_write(self, handle: FileHandle, nbytes: int) -> Generator:
        node = self._require_client(handle.client)
        start = self.env.now
        yield self.env.timeout(self.config.client_overhead)
        if nbytes:
            parts = self._stripe_split(handle.path, nbytes)
            jobs = [
                self.env.process(
                    self.servers.bulk_rpcs(node, ost, share, write=True)
                )
                for ost, share in parts
            ]
            yield self.env.all_of(jobs)
        return self.env.now - start

    def _t_read(self, handle: FileHandle, nbytes: int) -> Generator:
        node = self._require_client(handle.client)
        start = self.env.now
        yield self.env.timeout(self.config.client_overhead)
        if nbytes:
            parts = self._stripe_split(handle.path, nbytes)
            jobs = [
                self.env.process(
                    self.servers.bulk_rpcs(node, ost, share, write=False)
                )
                for ost, share in parts
            ]
            yield self.env.all_of(jobs)
        return self.env.now - start

    def _t_close(self, handle: FileHandle) -> Generator:
        node = self._require_client(handle.client)
        start = self.env.now
        # close-commit to the MDS (size/timestamps update)
        yield from self.servers.mds_rpc(node)
        return self.env.now - start

    def _t_fsync(self, handle: FileHandle) -> Generator:
        node = self._require_client(handle.client)
        start = self.env.now
        yield from self.servers.mds_rpc(node)
        return self.env.now - start

    def _t_stat(self, path: str, client: Optional[str]) -> Generator:
        node = self._require_client(client)
        start = self.env.now
        yield self.env.timeout(self.config.client_overhead)
        yield from self.servers.mds_rpc(node)
        return self.env.now - start

    def _t_unlink(self, path: str, client: Optional[str]) -> Generator:
        node = self._require_client(client)
        start = self.env.now
        yield from self.servers.mds_rpc(node)
        return self.env.now - start
