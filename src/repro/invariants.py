"""Workflow correctness invariants, checked live during every run.

The paper's argument rests on DYAD moving *the right bytes* faster — so
the simulator must be able to prove it never lies under faults, not just
that it degrades believably. This module is that proof obligation: a
pure-bookkeeping :class:`InvariantChecker` the workflow runner threads
through every producer/consumer process. It adds **zero simulated time**
and takes no event-path decisions, so a clean run with checking on is
bit-identical to one with checking off (asserted by the fingerprint
fixtures).

The invariant catalogue:

- **conservation** — every consumed frame carries exactly the bytes its
  producer committed (torn writes and short reads violate this);
- **exactly-once** — each consumer consumes each of its frames exactly
  once: no duplicates at consume time, no gaps at drain;
- **causality** — no consumer read completes before the matching commit
  (the KVS publish for DYAD, the completed write for POSIX);
- **integrity** — no consumer keeps a payload a corruption window
  damaged (checked paths re-fetch; unchecked ones trip this);
- **drain** — at workflow completion no lock is still held and no
  channel has in-flight flows (leaked resources);
- **monotonic-time** — per-process simulation time never runs backwards
  (a kernel self-check; every report observes the clock).

Streaming runs (see :mod:`repro.workflow.streaming`) add the
*flow-control* family:

- **credit-conservation** — window credits issued minus credits returned
  always equals the credits currently held (a leaked or double-returned
  credit violates this);
- **bounded-window** — the number of in-flight frames never exceeds the
  declared window W;
- **backpressure-liveness** — a producer blocked on backpressure must be
  unblocked within the declared horizon (a producer that *never*
  unblocks is caught at drain by the runner's cycle-naming
  :class:`~repro.errors.StallError` instead);
- **stream-drain** — at completion every credit is returned, no watch is
  still armed, and no published frame is still undelivered.

Violations are collected as human-readable strings and, when the
checker is fatal (the default), raised immediately as
:class:`~repro.errors.InvariantViolation` so a chaos repro fails loudly
at the first lie instead of producing silently-wrong metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import InvariantViolation

__all__ = ["InvariantConfig", "InvariantChecker"]


@dataclass(frozen=True)
class InvariantConfig:
    """How a run's invariant checker behaves.

    Frozen and ``repr``-stable so it participates in the result-cache
    content hash: runs with different checking regimes never alias.

    Attributes
    ----------
    enabled:
        Master switch. Off = the "unchecked legacy consumer" mode: no
        observations, no violations, ``invariant_checks == 0``.
    fatal:
        When True (default) the first violation raises
        :class:`~repro.errors.InvariantViolation`; when False violations
        are recorded and the run continues — the chaos harness uses this
        to collect *all* lies a fault plan induces.
    liveness_horizon:
        Backpressure-liveness bound in simulated seconds: a streaming
        producer blocked on a window credit for longer than this (and
        later unblocked) violates *backpressure-liveness*. ``None``
        (default) lets the workflow runner derive a generous horizon
        from the spec; non-streaming runs ignore it.
    """

    enabled: bool = True
    fatal: bool = True
    liveness_horizon: Optional[float] = None


class InvariantChecker:
    """Collects invariant observations from one workflow run.

    All methods are plain Python bookkeeping — no generator, no timeout,
    no RNG draw — so threading the checker through a run cannot perturb
    the simulation.
    """

    def __init__(self, env, config: Optional[InvariantConfig] = None) -> None:
        self.env = env
        self.config = config or InvariantConfig()
        #: individual invariant evaluations performed
        self.checks = 0
        #: human-readable violation records (empty on a correct run)
        self.violations: List[str] = []
        # (pair, frame) -> (committed nbytes, commit sim-time)
        self._commits: Dict[Tuple[int, int], Tuple[int, float]] = {}
        # (role, pair, frame) consumed so far
        self._consumed: Dict[Tuple[str, int, int], float] = {}
        # role -> last observed sim-time
        self._last_time: Dict[str, float] = {}

    # -- plumbing ------------------------------------------------------------
    def _report(self, message: str) -> None:
        self.violations.append(message)
        if self.config.fatal:
            raise InvariantViolation(message)

    def _observe_clock(self, role: str) -> None:
        now = self.env.now
        last = self._last_time.get(role)
        self.checks += 1
        if last is not None and now < last:
            self._report(
                f"monotonic-time: {role} observed t={now!r} after t={last!r}"
            )
        self._last_time[role] = now

    # -- producer-side observations -------------------------------------------
    def frame_committed(self, role: str, pair: int, frame: int, nbytes: int,
                        at: Optional[float] = None) -> None:
        """The producer of ``pair`` committed ``frame`` (``nbytes`` bytes).

        ``at`` overrides the commit instant (DYAD passes the KVS publish
        time, which under ``stale_metadata`` precedes the report).
        """
        if not self.config.enabled:
            return
        self._observe_clock(role)
        self.checks += 1
        key = (pair, frame)
        if key in self._commits:
            self._report(
                f"exactly-once: frame {frame} of pair {pair} committed twice"
            )
        self._commits[key] = (
            nbytes, self.env.now if at is None else float(at)
        )

    # -- consumer-side observations -------------------------------------------
    def frame_consumed(self, role: str, pair: int, frame: int, expected: int,
                       got: Optional[int], corrupt: bool = False) -> None:
        """``role`` finished reading ``frame`` of ``pair``.

        ``expected`` is what the consumer believes the frame holds (the
        workload's frame size); ``got`` is what actually arrived
        (``None`` is treated as ``expected`` for callers that cannot
        observe a byte count). ``corrupt`` marks a payload a corruption
        window damaged and no check caught.
        """
        if not self.config.enabled:
            return
        self._observe_clock(role)
        got = expected if got is None else got
        key = (role, pair, frame)
        self.checks += 1
        if key in self._consumed:
            self._report(
                f"exactly-once: {role} consumed frame {frame} of pair "
                f"{pair} twice"
            )
        self._consumed[key] = self.env.now
        commit = self._commits.get((pair, frame))
        self.checks += 1
        if commit is None:
            self._report(
                f"causality: {role} consumed frame {frame} of pair {pair} "
                "before any commit"
            )
        else:
            nbytes, t_commit = commit
            if self.env.now < t_commit:
                self._report(
                    f"causality: {role} read frame {frame} of pair {pair} "
                    f"at t={self.env.now!r}, before its commit at "
                    f"t={t_commit!r}"
                )
            self.checks += 1
            if nbytes != expected:
                self._report(
                    f"conservation: {role} expects {expected} bytes for "
                    f"frame {frame} of pair {pair} but its producer "
                    f"committed {nbytes}"
                )
        self.checks += 1
        if got != expected:
            self._report(
                f"conservation: {role} read {got} of {expected} bytes for "
                f"frame {frame} of pair {pair}"
            )
        self.checks += 1
        if corrupt:
            self._report(
                f"integrity: {role} consumed a corrupted payload for frame "
                f"{frame} of pair {pair}"
            )

    # -- flow-control observations (streaming sync modes) ----------------------
    def credit_issued(self, role: str, pair: int, frame: int,
                      in_flight: int, window: int) -> None:
        """``role`` took a window credit for ``frame`` of ``pair``.

        ``in_flight`` is the holder's view of credits currently out
        (issued − returned); the bounded-window invariant requires it to
        never exceed the declared window ``W``.
        """
        if not self.config.enabled:
            return
        self._observe_clock(role)
        self.checks += 1
        if in_flight > window:
            self._report(
                f"bounded-window: {role} holds {in_flight} in-flight "
                f"frame(s) of pair {pair} at frame {frame}, exceeding "
                f"window W={window}"
            )

    def credit_returned(self, role: str, pair: int, frame: int,
                        issued: int, returned: int, held: int) -> None:
        """``role`` returned the window credit of ``frame`` of ``pair``.

        Credit conservation: lifetime ``issued - returned`` must equal
        the ``held`` count the channel still tracks — anything else is a
        leaked or double-returned credit.
        """
        if not self.config.enabled:
            return
        self._observe_clock(role)
        self.checks += 1
        if issued - returned != held:
            self._report(
                f"credit-conservation: pair {pair} issued {issued} and "
                f"returned {returned} credit(s) but {held} are held "
                f"(frame {frame}, reported by {role})"
            )

    def producer_unblocked(self, role: str, pair: int, waited: float,
                           horizon: Optional[float]) -> None:
        """``role`` came off a backpressure block that lasted ``waited`` s.

        ``horizon`` is the declared backpressure-liveness bound (``None``
        disables the bound but still counts the check). Producers that
        never unblock are caught at drain by the runner's cycle-naming
        :class:`~repro.errors.StallError`.
        """
        if not self.config.enabled:
            return
        self._observe_clock(role)
        self.checks += 1
        if horizon is not None and waited > horizon:
            self._report(
                f"backpressure-liveness: {role} of pair {pair} was "
                f"blocked {waited:.6g}s awaiting a window credit, past "
                f"the declared horizon of {horizon:.6g}s"
            )

    def check_stream_drain(self, channels: Iterable = ()) -> None:
        """Streaming end-of-run: credits home, no armed watches, all
        published frames delivered, no credit returns still deferred."""
        if not self.config.enabled:
            return
        for channel in channels:
            pair = channel.pair
            self.checks += 1
            if channel.credits_issued != channel.credits_returned:
                leaked = channel.credits_issued - channel.credits_returned
                self._report(
                    f"credit-conservation: pair {pair} leaked {leaked} "
                    f"credit(s) at drain ({channel.credits_issued} issued, "
                    f"{channel.credits_returned} returned)"
                )
            self.checks += 1
            armed = channel.armed_watches()
            if armed:
                shown = ", ".join(str(f) for f in armed[:5])
                self._report(
                    f"stream-drain: pair {pair} still has watch(es) armed "
                    f"on frame(s) {shown} at drain"
                )
            self.checks += 1
            if channel.undelivered_frames() or channel.deferred_returns():
                self._report(
                    f"stream-drain: pair {pair} ended with "
                    f"{len(channel.undelivered_frames())} undelivered "
                    f"frame(s) and {len(channel.deferred_returns())} "
                    "deferred credit return(s)"
                )

    # -- end-of-run checks -----------------------------------------------------
    def check_drain(self, lock_tables: Iterable = (),
                    channels: Iterable = ()) -> None:
        """No locks held and no in-flight channel flows at drain."""
        if not self.config.enabled:
            return
        for table in lock_tables:
            self.checks += 1
            leaked = getattr(table, "_paths", None) or {}
            if leaked:
                sample = ", ".join(sorted(leaked)[:3])
                self._report(
                    f"drain: {len(leaked)} lock path(s) still held at "
                    f"drain ({sample})"
                )
        for channel in channels:
            self.checks += 1
            flows = getattr(channel, "active_flows", 0)
            if flows:
                self._report(
                    f"drain: channel still has {flows} in-flight flow(s) "
                    "at drain"
                )

    def check_complete(self, consumers: Dict[str, int], frames: int) -> None:
        """Every consumer consumed each of its pair's frames exactly once.

        ``consumers`` maps consumer role name → the pair index it reads.
        Duplicates were caught at consume time; this closes the gap side.
        """
        self.check_complete_edges(sorted(consumers.items()), frames)

    def check_complete_edges(self, edges: Iterable[Tuple[str, int]],
                             frames: int) -> None:
        """Per-edge completeness: each ``(role, stream)`` edge drained.

        The per-edge generalization of :meth:`check_complete`: an edge is
        one consumer reading one frame stream, and every frame of that
        stream must have been consumed by that role exactly once
        (duplicates were caught at consume time). Pairwise workflows have
        one edge per pair; a fan-out has one edge per consumer (all on
        stream 0); a fan-in has one edge per input stream (all consumed
        by the single reducer).
        """
        if not self.config.enabled:
            return
        for role, stream in edges:
            self.checks += 1
            missing = [f for f in range(frames)
                       if (role, stream, f) not in self._consumed]
            if missing:
                shown = ", ".join(str(f) for f in missing[:5])
                more = "" if len(missing) <= 5 else f" (+{len(missing) - 5})"
                self._report(
                    f"exactly-once: {role} never consumed frame(s) "
                    f"{shown}{more} of pair {stream}"
                )

    def check_aggregation(self, role: str, streams: int, frames: int) -> None:
        """Fan-in aggregation-completeness for the reduce consumer.

        ``role`` must have folded frame *k* of every one of ``streams``
        input streams before the workflow drained — a reduce that quietly
        skipped one producer's contribution is exactly the lie a fan-in
        can tell that per-pair bookkeeping would miss.
        """
        if not self.config.enabled:
            return
        self.check_complete_edges(
            [(role, s) for s in range(streams)], frames
        )
        self.checks += 1
        total = sum(1 for (r, _s, _f) in self._consumed if r == role)
        if total != streams * frames:
            self._report(
                f"aggregation-completeness: {role} folded {total} "
                f"contribution(s), expected {streams} stream(s) x "
                f"{frames} frame(s) = {streams * frames}"
            )

    def check_pool(self, roles: Iterable[str], streams: int,
                   frames: int) -> None:
        """Work-stealing pool: every task consumed exactly once pool-wide.

        Per-role keying cannot catch two *different* workers claiming the
        same ``(stream, frame)`` task — each sees its own first
        consumption. This drain check closes that hole: across the whole
        pool each task must appear exactly once, with no gaps.
        """
        if not self.config.enabled:
            return
        roleset = set(roles)
        owners: Dict[Tuple[int, int], List[str]] = {}
        for (r, s, f) in self._consumed:
            if r in roleset:
                owners.setdefault((s, f), []).append(r)
        for s in range(streams):
            self.checks += 1
            missing = [f for f in range(frames) if (s, f) not in owners]
            if missing:
                shown = ", ".join(str(f) for f in missing[:5])
                more = "" if len(missing) <= 5 else f" (+{len(missing) - 5})"
                self._report(
                    f"exactly-once: no pool worker consumed frame(s) "
                    f"{shown}{more} of stream {s}"
                )
            self.checks += 1
            dup = [(f, owners[(s, f)]) for f in range(frames)
                   if len(owners.get((s, f), ())) > 1]
            if dup:
                f, who = dup[0]
                self._report(
                    f"exactly-once: frame {f} of stream {s} was consumed "
                    f"by {len(who)} pool workers ({', '.join(sorted(who))})"
                )

    # -- reporting --------------------------------------------------------------
    @property
    def violation_count(self) -> int:
        """How many violations were recorded."""
        return len(self.violations)
