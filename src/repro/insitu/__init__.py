"""In-situ analytics pipelines with simulation steering.

The paper's Section II motivates the whole study with this loop:
simulations produce frames, in-situ analytics consume them *as they are
generated*, and researchers "steer the simulation (e.g., terminate or
fork a trajectory) and annotate the events". This package provides that
loop as a composable API over the real-concurrency backend:

- **sources** (:mod:`repro.insitu.sources`) produce frames: the real LJ
  engine, a replay of a stored trajectory, or a synthetic generator;
- **sinks** (:mod:`repro.insitu.sinks`) consume frames and may emit
  steering decisions: eigenvalue-event steering, observable recording,
  trajectory capture;
- the **pipeline** (:mod:`repro.insitu.pipeline`) wires one source to
  many sinks through the DYAD-protocol local backend (real threads,
  files, locks), delivers steering decisions *back to the producer*,
  and reports what happened.

Example::

    from repro.insitu import (InSituPipeline, EngineSource,
                              EigenvalueSteering, ObservableRecorder)
    from repro.md import LJConfig, radius_of_gyration

    pipeline = InSituPipeline(
        source=EngineSource(LJConfig(n_atoms=300), stride=10),
        sinks=[
            EigenvalueSteering({"h1": range(40)}, cutoff=3.0),
            ObservableRecorder({"rg": radius_of_gyration}),
        ],
    )
    report = pipeline.run(max_frames=100)
    report.terminated_early, report.observables["rg"]
"""

from repro.insitu.pipeline import InSituPipeline, PipelineReport
from repro.insitu.sinks import (
    AnalyticsSink,
    EigenvalueSteering,
    ObservableRecorder,
    Steering,
    TrajectoryCapture,
)
from repro.insitu.sources import (
    EngineSource,
    FrameSource,
    SyntheticSource,
    TrajectoryReplay,
)

__all__ = [
    "InSituPipeline",
    "PipelineReport",
    "AnalyticsSink",
    "EigenvalueSteering",
    "ObservableRecorder",
    "Steering",
    "TrajectoryCapture",
    "EngineSource",
    "FrameSource",
    "SyntheticSource",
    "TrajectoryReplay",
]
