"""The in-situ pipeline: source → middleware → sinks, with steering.

Producer and consumer run as real threads connected by the DYAD-protocol
local backend (staging directories, blocking KVS watch, flock): the same
data path as the paper's workflows, carrying real encoded frames. The
consumer decodes each frame and fans it out to the sinks; any sink
returning :attr:`~repro.insitu.sinks.Steering.TERMINATE` flips a stop
event the producer checks before generating the next frame — closing the
steering loop the paper's Section II-B describes.
"""

from __future__ import annotations

import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.backends.local import LocalDyad
from repro.errors import ReproError
from repro.insitu.sinks import AnalyticsSink, ObservableRecorder, Steering
from repro.insitu.sources import FrameSource
from repro.md.frame import Frame

__all__ = ["InSituPipeline", "PipelineReport"]


@dataclass
class PipelineReport:
    """What one pipeline run did."""

    frames_produced: int
    frames_consumed: int
    terminated_early: bool
    elapsed: float
    errors: List[BaseException] = field(default_factory=list)
    observables: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no thread raised."""
        return not self.errors


class InSituPipeline:
    """One producer (source) feeding analytics sinks through the middleware."""

    def __init__(
        self,
        source: FrameSource,
        sinks: Sequence[AnalyticsSink],
        workdir: Optional[str] = None,
        consume_timeout: float = 30.0,
    ) -> None:
        if not sinks:
            raise ReproError("need at least one sink")
        self.source = source
        self.sinks = list(sinks)
        self.workdir = workdir
        self.consume_timeout = consume_timeout

    def run(self, max_frames: int = 64) -> PipelineReport:
        """Run the pipeline to completion (or early termination)."""
        if max_frames < 1:
            raise ReproError("max_frames must be >= 1")
        owns_dir = self.workdir is None
        tmp = tempfile.TemporaryDirectory(prefix="insitu-") if owns_dir else None
        root = tmp.name if owns_dir else self.workdir
        try:
            return self._run_in(root, max_frames)
        finally:
            if tmp is not None:
                tmp.cleanup()

    # -- internals ------------------------------------------------------------
    def _run_in(self, root: str, max_frames: int) -> PipelineReport:
        dyad = LocalDyad(root, nodes=2)
        stop = threading.Event()
        errors: List[BaseException] = []
        counts = {"produced": 0, "consumed": 0}
        lock = threading.Lock()

        def producer() -> None:
            try:
                iterator = iter(self.source)
                for index in range(max_frames):
                    if stop.is_set():
                        break  # steering: the consumer asked us to stop
                    try:
                        frame = next(iterator)
                    except StopIteration:
                        break
                    dyad.produce("node00", f"frame{index:06d}.mdfr",
                                 frame.encode())
                    with lock:
                        counts["produced"] += 1
            except BaseException as exc:  # noqa: BLE001 - reported
                with lock:
                    errors.append(exc)
            finally:
                # sentinel: zero-length payload means end-of-stream
                dyad.produce("node00", "frame-end", b"")

        def consumer() -> None:
            index = 0
            try:
                while True:
                    payload = self._next_payload(dyad, index, stop)
                    if payload is None:
                        break
                    frame = Frame.decode(payload)
                    with lock:
                        counts["consumed"] += 1
                    verdict = Steering.CONTINUE
                    for sink in self.sinks:
                        if sink.on_frame(index, frame) is Steering.TERMINATE:
                            verdict = Steering.TERMINATE
                    if verdict is Steering.TERMINATE:
                        stop.set()
                    index += 1
            except BaseException as exc:  # noqa: BLE001
                with lock:
                    errors.append(exc)
            finally:
                for sink in self.sinks:
                    try:
                        sink.on_end()
                    except BaseException as exc:  # noqa: BLE001
                        with lock:
                            errors.append(exc)

        start = time.monotonic()
        threads = [threading.Thread(target=producer, name="insitu-prod"),
                   threading.Thread(target=consumer, name="insitu-cons")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.monotonic() - start

        observables: Dict[str, List[float]] = {}
        for sink in self.sinks:
            if isinstance(sink, ObservableRecorder):
                observables.update(sink.series)
        return PipelineReport(
            frames_produced=counts["produced"],
            frames_consumed=counts["consumed"],
            terminated_early=stop.is_set(),
            elapsed=elapsed,
            errors=errors,
            observables=observables,
        )

    def _next_payload(self, dyad: LocalDyad, index: int,
                      stop: threading.Event) -> Optional[bytes]:
        """Next frame's bytes, or None at end-of-stream.

        Races the per-frame watch against the end-of-stream sentinel: when
        the producer stops early (steering), the pending frame never
        arrives and the sentinel breaks the wait.
        """
        deadline = time.monotonic() + self.consume_timeout
        name = f"frame{index:06d}.mdfr"
        while True:
            try:
                return dyad.consume("node01", name, timeout=0.05)
            except TimeoutError:
                try:
                    dyad.kvs.lookup("dyad/frame-end")
                except Exception:
                    pass
                else:
                    # stream ended; one last chance in case the frame
                    # landed just before the sentinel
                    try:
                        return dyad.consume("node01", name, timeout=0.05)
                    except TimeoutError:
                        return None
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"frame {index} never arrived within "
                        f"{self.consume_timeout}s"
                    )
