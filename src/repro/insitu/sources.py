"""Frame sources for in-situ pipelines.

A source is any iterable of :class:`~repro.md.frame.Frame`. Three
implementations cover the practical cases:

- :class:`EngineSource` — frames from a live Lennard-Jones simulation
  (the "GROMACS + Plumed" role in the paper's Fig. 1), with support for
  *forking*: cloning the running simulation into an independent source
  with perturbed velocities, the second steering action the paper names;
- :class:`TrajectoryReplay` — frames replayed from a stored trajectory
  container (post-hoc analysis through the same pipeline);
- :class:`SyntheticSource` — deterministic random frames (testing and
  load generation).
"""

from __future__ import annotations

from typing import Iterator, Optional, Protocol, runtime_checkable

import numpy as np

from repro.errors import ReproError
from repro.md.engine import LJConfig, LJSimulation
from repro.md.frame import Frame
from repro.md.trajectory import TrajectoryReader

__all__ = ["FrameSource", "EngineSource", "TrajectoryReplay", "SyntheticSource"]


@runtime_checkable
class FrameSource(Protocol):
    """Anything that yields frames."""

    def __iter__(self) -> Iterator[Frame]:  # pragma: no cover - protocol
        ...


class EngineSource:
    """Frames from a live LJ simulation, one every ``stride`` steps."""

    def __init__(self, config: LJConfig, stride: int = 10,
                 simulation: Optional[LJSimulation] = None) -> None:
        if stride < 1:
            raise ReproError(f"stride must be >= 1, got {stride}")
        self.config = config
        self.stride = stride
        self.simulation = simulation or LJSimulation(config)

    def __iter__(self) -> Iterator[Frame]:
        while True:
            self.simulation.step(self.stride)
            yield self.simulation.frame()

    def fork(self, seed: int, velocity_jitter: float = 0.05) -> "EngineSource":
        """Clone the running simulation into an independent trajectory.

        The paper's second steering action: "fork a trajectory". The fork
        starts from the current positions with slightly perturbed
        velocities (an independent exploration of nearby phase space).
        """
        if velocity_jitter < 0:
            raise ReproError("velocity_jitter must be non-negative")
        clone = LJSimulation(self.config)
        clone.positions = self.simulation.positions.copy()
        rng = np.random.default_rng(seed)
        clone.velocities = self.simulation.velocities.copy()
        if velocity_jitter:
            clone.velocities += rng.normal(
                0.0, velocity_jitter, clone.velocities.shape
            )
        clone.velocities -= clone.velocities.mean(axis=0)
        clone.step_index = self.simulation.step_index
        clone.time = self.simulation.time
        clone.forces, clone.potential = clone._forces(clone.positions)
        return EngineSource(self.config, self.stride, simulation=clone)


class TrajectoryReplay:
    """Frames replayed from a trajectory container file."""

    def __init__(self, path) -> None:
        self.path = path

    def __iter__(self) -> Iterator[Frame]:
        with open(self.path, "rb") as fh:
            reader = TrajectoryReader(fh)
            for frame in reader:
                yield frame


class SyntheticSource:
    """Deterministic random frames of a fixed size."""

    def __init__(self, natoms: int, box: float = 50.0, seed: int = 0,
                 count: Optional[int] = None) -> None:
        if natoms < 1:
            raise ReproError("natoms must be >= 1")
        self.natoms = natoms
        self.box = box
        self.seed = seed
        self.count = count

    def __iter__(self) -> Iterator[Frame]:
        rng = np.random.default_rng(self.seed)
        index = 0
        while self.count is None or index < self.count:
            yield Frame.random(self.natoms, rng, box=self.box, step=index)
            index += 1
