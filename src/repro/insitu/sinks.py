"""Analytics sinks for in-situ pipelines.

A sink receives each consumed frame (already decoded) and returns a
:class:`Steering` decision. Returning :attr:`Steering.TERMINATE` stops
the producer — the paper's "terminate a trajectory" steering action —
delivered through the pipeline's backchannel.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.md.analytics import EigenvalueTracker
from repro.md.frame import Frame
from repro.md.trajectory import TrajectoryWriter

__all__ = [
    "Steering",
    "AnalyticsSink",
    "EigenvalueSteering",
    "ObservableRecorder",
    "TrajectoryCapture",
]


class Steering(enum.Enum):
    """A sink's verdict on the running simulation."""

    CONTINUE = "continue"
    TERMINATE = "terminate"


class AnalyticsSink:
    """Base class: override :meth:`on_frame` (and optionally :meth:`on_end`)."""

    def on_frame(self, index: int, frame: Frame) -> Steering:
        """Process one frame; return a steering decision."""
        raise NotImplementedError

    def on_end(self) -> None:
        """Called once after the last frame (normal end or termination)."""


class EigenvalueSteering(AnalyticsSink):
    """The paper's Fig. 1 analytics with steering.

    Tracks the largest eigenvalue of contact matrices of named atom
    subsets; when a sudden change is detected (the event the paper's
    in-situ analytics exist to catch), requests termination after
    ``events_to_terminate`` events (default 1). Set it to 0 to only
    annotate events without steering.
    """

    def __init__(
        self,
        subsets: Dict[str, Sequence[int]],
        cutoff: float = 8.0,
        threshold: float = 3.0,
        warmup: int = 5,
        events_to_terminate: int = 1,
    ) -> None:
        if events_to_terminate < 0:
            raise ReproError("events_to_terminate must be >= 0")
        self.tracker = EigenvalueTracker(
            subsets, cutoff=cutoff, threshold=threshold, warmup=warmup,
        )
        self.events_to_terminate = events_to_terminate

    @property
    def events(self):
        """All (step, subset, value) events annotated so far."""
        return self.tracker.events

    def on_frame(self, index: int, frame: Frame) -> Steering:
        """Ingest the frame; terminate once enough events accumulated."""
        self.tracker.ingest(frame)
        if (self.events_to_terminate
                and len(self.tracker.events) >= self.events_to_terminate):
            return Steering.TERMINATE
        return Steering.CONTINUE


class ObservableRecorder(AnalyticsSink):
    """Records named per-frame observables (`name -> f(frame) -> float`)."""

    def __init__(self, observables: Dict[str, Callable[[Frame], float]]) -> None:
        if not observables:
            raise ReproError("need at least one observable")
        self.observables = dict(observables)
        self.series: Dict[str, List[float]] = {k: [] for k in observables}
        self.steps: List[int] = []

    def on_frame(self, index: int, frame: Frame) -> Steering:
        """Evaluate every observable on the frame."""
        self.steps.append(frame.step)
        for name, fn in self.observables.items():
            self.series[name].append(float(fn(frame)))
        return Steering.CONTINUE


class TrajectoryCapture(AnalyticsSink):
    """Writes every consumed frame into a trajectory container."""

    def __init__(self, stream) -> None:
        self.writer = TrajectoryWriter(stream)
        self._closed = False

    def on_frame(self, index: int, frame: Frame) -> Steering:
        """Append the frame to the trajectory."""
        self.writer.append(frame)
        return Steering.CONTINUE

    def on_end(self) -> None:
        """Finalize the trajectory index (idempotent)."""
        if not self._closed:
            self.writer.finalize()
            self._closed = True
