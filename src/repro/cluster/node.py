"""Compute node model: cores, GPUs, a local SSD, and a NIC.

Nodes enforce the paper's placement rule — at most one workflow process per
GPU ("we only place up to 8 processes per node because we only have 8 GPUs
per node") — via :meth:`Node.claim_gpu`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.network import NIC, Fabric
from repro.cluster.ssd import SSDConfig, SSDModel
from repro.errors import ConfigError, WorkflowError
from repro.sim.core import Environment
from repro.sim.rng import RngStreams

__all__ = ["NodeConfig", "Node"]


@dataclass(frozen=True)
class NodeConfig:
    """Static description of one compute node."""

    cores: int = 48
    gpus: int = 8
    ssd: SSDConfig = SSDConfig()

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid values."""
        if self.cores < 1:
            raise ConfigError("node needs at least one core")
        if self.gpus < 0:
            raise ConfigError("gpu count cannot be negative")
        self.ssd.validate()


class Node:
    """One compute node attached to a cluster fabric."""

    def __init__(
        self,
        env: Environment,
        node_id: str,
        config: NodeConfig,
        fabric: Fabric,
        rng: RngStreams,
    ) -> None:
        config.validate()
        self.env = env
        self.node_id = node_id
        self.config = config
        self.ssd = SSDModel(env, config.ssd, rng, name=f"{node_id}.ssd",
                            fluid=fabric.fluid,
                            fold_latency=fabric.fold_latency)
        self.nic: NIC = fabric.attach(node_id)
        self._gpus_claimed = 0

    @property
    def gpus_free(self) -> int:
        """GPUs not yet claimed by a workflow process."""
        return self.config.gpus - self._gpus_claimed

    def claim_gpu(self) -> int:
        """Claim one GPU slot; returns its index.

        Raises :class:`WorkflowError` when the node is full — this is the
        mechanism that caps placement at 8 processes/node in experiments.
        """
        if self._gpus_claimed >= self.config.gpus:
            raise WorkflowError(
                f"{self.node_id}: all {self.config.gpus} GPUs claimed"
            )
        idx = self._gpus_claimed
        self._gpus_claimed += 1
        return idx

    def release_gpu(self) -> None:
        """Return one GPU slot."""
        if self._gpus_claimed <= 0:
            raise WorkflowError(f"{self.node_id}: no GPUs claimed")
        self._gpus_claimed -= 1

    def __repr__(self) -> str:
        return (
            f"<Node {self.node_id} cores={self.config.cores} "
            f"gpus={self._gpus_claimed}/{self.config.gpus}>"
        )
