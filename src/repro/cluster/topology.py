"""Cluster assembly: environment + fabric + homogeneous nodes.

A :class:`Cluster` is the root object experiments build: it owns the DES
:class:`~repro.sim.core.Environment`, the RNG stream family for the run,
the :class:`~repro.cluster.network.Fabric`, and the list of
:class:`~repro.cluster.node.Node` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.cluster.network import Fabric, FabricConfig
from repro.cluster.node import Node, NodeConfig
from repro.errors import ConfigError
from repro.sim.core import Environment
from repro.sim.fluid import Fidelity, FluidNetwork
from repro.sim.rng import RngStreams

__all__ = ["ClusterConfig", "Cluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of a homogeneous cluster.

    ``fidelity`` selects the simulation tier (see
    :class:`repro.sim.fluid.Fidelity`): ``exact`` is the bit-reproducible
    per-channel kernel, ``hybrid``/``fluid`` delegate bulk byte movement
    to a cluster-wide flow-level solver.
    """

    nodes: int = 2
    node: NodeConfig = NodeConfig()
    fabric: FabricConfig = FabricConfig()
    seed: int = 0
    fidelity: str = "exact"

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid values."""
        if self.nodes < 1:
            raise ConfigError("cluster needs at least one node")
        Fidelity.coerce(self.fidelity)
        self.node.validate()
        self.fabric.validate()


class Cluster:
    """A running simulated cluster.

    Node ids are ``node00 … nodeNN``; experiments address nodes by index
    through :meth:`node`.
    """

    def __init__(self, config: ClusterConfig) -> None:
        config.validate()
        self.config = config
        self.env = Environment()
        self.rng = RngStreams(config.seed)
        self.fidelity = Fidelity.coerce(config.fidelity)
        #: One flow-level engine shared by every substrate on the
        #: `hybrid`/`fluid` tiers; `None` on `exact`.
        self.fluid = (FluidNetwork(self.env) if self.fidelity.uses_fluid
                      else None)
        self.fabric = Fabric(self.env, config.fabric, self.rng,
                             fluid=self.fluid,
                             fold_latency=self.fidelity.folds_latency)
        self.nodes: List[Node] = [
            Node(self.env, f"node{i:02d}", config.node, self.fabric, self.rng)
            for i in range(config.nodes)
        ]

    def node(self, index: int) -> Node:
        """Node by index (supports negative indexing)."""
        return self.nodes[index]

    def node_by_id(self, node_id: str) -> Node:
        """Node by its fabric id."""
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise ConfigError(f"no node with id {node_id!r}")

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"<Cluster nodes={len(self.nodes)} seed={self.config.seed}>"
