"""Simulated cluster hardware substrate.

Models the hardware the paper ran on — LLNL's Corona cluster — at the level
of detail the study's findings depend on: node-local NVMe SSDs with
bandwidth/latency and concurrency sharing, an InfiniBand-like fabric with
per-NIC bandwidth sharing and per-hop latency, and nodes with a bounded
number of cores/GPUs (the paper's 8-processes-per-node placement limit
comes from Corona's 8 GPUs per node).

Public API
----------
- :class:`~repro.cluster.ssd.SSDModel`, :class:`~repro.cluster.ssd.SSDConfig`
- :class:`~repro.cluster.network.Fabric`, :class:`~repro.cluster.network.FabricConfig`,
  :class:`~repro.cluster.network.NIC`
- :class:`~repro.cluster.node.Node`, :class:`~repro.cluster.node.NodeConfig`
- :class:`~repro.cluster.topology.Cluster`, :class:`~repro.cluster.topology.ClusterConfig`
- :func:`~repro.cluster.corona.corona` — the Corona machine preset.
"""

from repro.cluster.corona import CORONA_NODE, corona
from repro.cluster.network import NIC, Fabric, FabricConfig
from repro.cluster.node import Node, NodeConfig
from repro.cluster.ssd import SSDConfig, SSDModel
from repro.cluster.topology import Cluster, ClusterConfig

__all__ = [
    "CORONA_NODE",
    "corona",
    "NIC",
    "Fabric",
    "FabricConfig",
    "Node",
    "NodeConfig",
    "SSDConfig",
    "SSDModel",
    "Cluster",
    "ClusterConfig",
]
