"""InfiniBand-like cluster fabric model.

The fabric is a star of full-duplex NICs around an idealized switch:

- every node owns a :class:`NIC` with separate egress and ingress
  fluid-flow channels (concurrent flows share the channel);
- a point-to-point transfer pays per-hop wire latency, then streams
  through *both* the source egress and destination ingress channels; the
  transfer completes when the slower of the two finishes, approximating a
  min-rate coupled flow;
- the switch itself is modelled with an optional aggregate bisection
  channel; Corona's QDR switch is far from saturation in these workloads
  so the preset leaves it effectively unconstrained.

RDMA transfers (DYAD's pull protocol) use the same data path but a lower
per-message latency and zero per-byte CPU cost, matching the "direct
network communication" behaviour the paper credits for Finding 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError, TransferError
from repro.sim.core import Environment
from repro.sim.fluid import FluidNetwork
from repro.sim.resources import SharedBandwidth, Signal
from repro.sim.rng import RngStreams
from repro.units import gb_per_s, usec

__all__ = ["FabricConfig", "NIC", "Fabric"]


@dataclass(frozen=True)
class FabricConfig:
    """Performance envelope of the interconnect.

    Defaults approximate InfiniBand QDR (4× QDR = 32 Gbit/s ≈ 4 GB/s per
    port) as installed on Corona.

    Attributes
    ----------
    link_bandwidth:
        Per-NIC, per-direction bandwidth in bytes/second.
    hop_latency:
        Wire+switch latency per hop in seconds; a node-to-node path is
        ``hops`` hops long.
    hops:
        Number of switch hops between two compute nodes.
    rdma_setup:
        Extra fixed cost to post an RDMA read (QP doorbell, rendezvous);
        paid once per transfer.
    message_setup:
        Fixed cost of an eager two-sided message (used for control traffic
        such as KVS RPCs).
    bisection_bandwidth:
        Aggregate switch capacity shared by all in-flight transfers;
        ``None`` disables the constraint.
    jitter_cv:
        Lognormal latency jitter coefficient of variation (0 = off).
    """

    link_bandwidth: float = gb_per_s(4.0)
    hop_latency: float = usec(2.0)
    hops: int = 2
    rdma_setup: float = usec(5.0)
    message_setup: float = usec(15.0)
    bisection_bandwidth: Optional[float] = None
    jitter_cv: float = 0.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on non-physical values."""
        if self.link_bandwidth <= 0:
            raise ConfigError("link bandwidth must be positive")
        if self.hop_latency < 0 or self.rdma_setup < 0 or self.message_setup < 0:
            raise ConfigError("latencies must be non-negative")
        if self.hops < 1:
            raise ConfigError("hops must be >= 1")
        if self.bisection_bandwidth is not None and self.bisection_bandwidth <= 0:
            raise ConfigError("bisection bandwidth must be positive")
        if self.jitter_cv < 0:
            raise ConfigError("jitter_cv must be non-negative")


class NIC:
    """One full-duplex network port.

    On the fluid tiers both direction channels are
    :class:`~repro.sim.fluid.FluidLink` constraints of the cluster-wide
    :class:`~repro.sim.fluid.FluidNetwork` instead of per-channel
    :class:`SharedBandwidth` instances; the surface is duck-compatible.
    """

    def __init__(self, env: Environment, node_id: str, bandwidth: float,
                 fluid: Optional[FluidNetwork] = None) -> None:
        self.node_id = node_id
        if fluid is not None:
            self.egress = fluid.link(bandwidth, label=f"{node_id}.egress")
            self.ingress = fluid.link(bandwidth, label=f"{node_id}.ingress")
        else:
            self.egress = SharedBandwidth(env, bandwidth)
            self.ingress = SharedBandwidth(env, bandwidth)

    @property
    def active_flows(self) -> int:
        """In-flight flows touching this NIC (either direction)."""
        return self.egress.active_flows + self.ingress.active_flows

    def channels(self):
        """Both direction channels, for kernel-health aggregation."""
        yield self.egress
        yield self.ingress


class FabricStats:
    """Lifetime transfer counters."""

    def __init__(self) -> None:
        self.transfers = 0
        self.rdma_transfers = 0
        self.messages = 0
        self.bytes_moved = 0
        self.link_stalls = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FabricStats(transfers={self.transfers}, "
            f"rdma={self.rdma_transfers}, messages={self.messages}, "
            f"bytes={self.bytes_moved}, link_stalls={self.link_stalls})"
        )


class Fabric:
    """The cluster interconnect: a set of NICs around a switch."""

    def __init__(self, env: Environment, config: FabricConfig, rng: RngStreams,
                 fluid: Optional[FluidNetwork] = None,
                 fold_latency: bool = False) -> None:
        config.validate()
        self.env = env
        self.config = config
        self._rng = rng
        #: Shared flow-level engine on the `hybrid`/`fluid` tiers (`None`
        #: on `exact`); substrates downstream (SSD, Lustre OSS) read this
        #: to place their channels on the same network.
        self.fluid = fluid
        #: `fluid` tier only: fixed latencies ride as flow tails.
        self.fold_latency = fold_latency and fluid is not None
        self._nics: Dict[str, NIC] = {}
        self._link_down: Dict[str, Signal] = {}
        if config.bisection_bandwidth is None:
            self._bisection = None
        elif fluid is not None:
            self._bisection = fluid.link(config.bisection_bandwidth,
                                         label="bisection")
        else:
            self._bisection = SharedBandwidth(env, config.bisection_bandwidth)
        self.stats = FabricStats()
        # telemetry hooks (None until attach_metrics)
        self._m_bytes = None
        self._m_stalls = None
        self._m_links_down = None

    # -- topology -------------------------------------------------------------
    def attach(self, node_id: str) -> NIC:
        """Register a node on the fabric and return its NIC."""
        if node_id in self._nics:
            raise ConfigError(f"node {node_id!r} already attached")
        nic = NIC(self.env, node_id, self.config.link_bandwidth, self.fluid)
        self._nics[node_id] = nic
        return nic

    def nic(self, node_id: str) -> NIC:
        """NIC of an attached node; :class:`TransferError` if unknown."""
        try:
            return self._nics[node_id]
        except KeyError:
            raise TransferError(f"node {node_id!r} not attached to fabric") from None

    def path_latency(self) -> float:
        """Base node-to-node wire latency (before jitter)."""
        return self.config.hop_latency * self.config.hops

    def channels(self):
        """Every fluid-flow channel in the fabric (NICs + bisection)."""
        for nic in self._nics.values():
            yield from nic.channels()
        if self._bisection is not None:
            yield self._bisection

    # -- telemetry --------------------------------------------------------------
    def attach_metrics(self, timeline) -> None:
        """Meter every link plus fabric-wide totals onto ``timeline``.

        Per-NIC channels appear as ``net.{node}.egress`` /
        ``net.{node}.ingress`` gauge families, the switch as
        ``net.bisection``; ``net.bytes_moved`` / ``net.link_stalls``
        counters and the ``net.links_down`` gauge track fabric-wide state.
        Attach after all nodes are registered.
        """
        for node_id, nic in self._nics.items():
            nic.egress.attach_metrics(timeline, f"net.{node_id}.egress")
            nic.ingress.attach_metrics(timeline, f"net.{node_id}.ingress")
        if self._bisection is not None:
            self._bisection.attach_metrics(timeline, "net.bisection")
        self._m_bytes = timeline.counter("net.bytes_moved")
        self._m_stalls = timeline.counter("net.link_stalls")
        self._m_links_down = timeline.gauge("net.links_down")
        self._m_links_down.set(float(len(self._link_down)))

    # -- fault injection --------------------------------------------------------
    def link_is_down(self, node_id: str) -> bool:
        """True while ``fail_link(node_id)`` is in effect."""
        return node_id in self._link_down

    def fail_link(self, node_id: str) -> None:
        """Take a node's link down: traffic touching it stalls until restore.

        New and queued transfers block *before* touching the wire — they are
        delayed, not failed, matching how a lossless fabric with link-level
        retry presents a flapping port to software (the paper's systems see
        stalls, not packet loss). Idempotent while the link is already down.
        """
        self.nic(node_id)  # raises TransferError for unknown nodes
        if node_id not in self._link_down:
            self._link_down[node_id] = Signal(self.env)
            if self._m_links_down is not None:
                self._m_links_down.set(float(len(self._link_down)))

    def restore_link(self, node_id: str) -> None:
        """Bring a failed link back; wakes every transfer stalled on it."""
        signal = self._link_down.pop(node_id, None)
        if signal is not None:
            if self._m_links_down is not None:
                self._m_links_down.set(float(len(self._link_down)))
            signal.fire()

    def _await_links(self, src: str, dst: str):
        """Generator: block while either endpoint's link is down."""
        stalled = False
        while True:
            signal = self._link_down.get(src) or self._link_down.get(dst)
            if signal is None:
                return
            if not stalled:
                stalled = True
                self.stats.link_stalls += 1
                if self._m_stalls is not None:
                    self._m_stalls.inc()
            yield signal.wait()

    # -- data path --------------------------------------------------------------
    def _jittered(self, stream: str, base: float) -> float:
        if self.config.jitter_cv == 0.0:
            return base
        return self._rng.jitter(stream, base, self.config.jitter_cv)

    def _move(self, src: str, dst: str, nbytes: int, setup: float,
              phases=None):
        """Common generator for both transfer kinds; returns elapsed time.

        ``phases`` (fluid tiers only) replaces the single unit-weight flow
        with a sequence of ``(nbytes, weight)`` fluid flows run back to
        back — the shape a collapsed chunk pipeline needs (see
        :meth:`rdma_get_bulk`). Bytes must sum to ``nbytes``.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if src == dst:
            # Loopback never touches the wire: a small fixed memcpy-ish cost.
            start = self.env.now
            yield self.env.timeout(self._jittered("fabric.loopback", setup / 2))
            return self.env.now - start
        src_nic = self.nic(src)
        dst_nic = self.nic(dst)
        start = self.env.now
        if self._link_down:  # single falsy check on the fault-free hot path
            yield from self._await_links(src, dst)
        latency = self._jittered("fabric.latency", setup + self.path_latency())
        fluid = self.fluid
        if fluid is None:
            yield self.env.timeout(latency)
            if nbytes:
                flows = [
                    src_nic.egress.transfer(nbytes),
                    dst_nic.ingress.transfer(nbytes),
                ]
                if self._bisection is not None:
                    flows.append(self._bisection.transfer(nbytes))
                yield self.env.all_of(flows)
        else:
            # Fluid tiers: one jointly-rated flow across the whole path
            # instead of independent per-channel flows joined by all_of.
            if self._bisection is not None:
                links = (src_nic.egress, self._bisection, dst_nic.ingress)
            else:
                links = (src_nic.egress, dst_nic.ingress)
            if phases is None:
                phases = ((nbytes, 1.0),)
            if self.fold_latency:
                # The head latency folds onto the last phase's tail.
                last = len(phases) - 1
                for i, (pbytes, pweight) in enumerate(phases):
                    yield fluid.transfer(pbytes, links,
                                         tail=latency if i == last else 0.0,
                                         weight=pweight)
            else:
                yield self.env.timeout(latency)
                for pbytes, pweight in phases:
                    if pbytes:
                        yield fluid.transfer(pbytes, links, weight=pweight)
        self.stats.bytes_moved += nbytes
        if self._m_bytes is not None:
            self._m_bytes.add(nbytes)
        return self.env.now - start

    def transfer(self, src: str, dst: str, nbytes: int):
        """Generator: two-sided bulk transfer; returns elapsed seconds."""
        self.stats.transfers += 1
        return (yield from self._move(src, dst, nbytes, self.config.message_setup))

    def rdma_get(self, initiator: str, target: str, nbytes: int):
        """Generator: RDMA read of ``nbytes`` from ``target`` into ``initiator``.

        Data flows target → initiator; the initiator pays only the RDMA
        setup cost (one-sided, no remote CPU involvement).
        """
        self.stats.rdma_transfers += 1
        return (yield from self._move(target, initiator, nbytes, self.config.rdma_setup))

    def rdma_get_bulk(self, initiator: str, target: str, nbytes: int,
                      chunk: int):
        """Generator: a chunked RDMA pull collapsed into weighted flows.

        Only meaningful on the fluid tiers. Under max-min sharing, ``k``
        concurrent chunks over a shared path each progress at the per-slot
        rate, so the pipeline is equivalent to a weight-``k`` flow until
        the short final chunk (``r = nbytes mod chunk`` bytes) drains —
        ``k·r`` bytes in — then a weight-``k-1`` flow for the remaining
        ``(k-1)·(chunk-r)`` bytes. Two flows (often one, when ``chunk``
        divides ``nbytes``) reproduce the pipeline's completion time and
        contention footprint without its per-chunk processes/events.
        ``rdma_transfers`` advances by ``k`` so the wire-operation count
        matches the exact tier's accounting.
        """
        k, r = divmod(nbytes, chunk)
        if r == 0:
            r = chunk
        else:
            k += 1
        self.stats.rdma_transfers += k
        if k == 1 or r == chunk:
            phases = ((nbytes, float(k)),)
        else:
            phases = ((k * r, float(k)), ((k - 1) * (chunk - r), float(k - 1)))
        return (yield from self._move(target, initiator, nbytes,
                                      self.config.rdma_setup,
                                      phases=phases))

    def message(self, src: str, dst: str, nbytes: int = 0):
        """Generator: small control message (eager protocol)."""
        self.stats.messages += 1
        return (yield from self._move(src, dst, nbytes, self.config.message_setup))
