"""Node-local NVMe SSD device model.

The device is modelled as two fluid-flow channels (read and write — NVMe
devices have independent read/write data paths to a first approximation)
plus a fixed per-operation latency with multiplicative lognormal jitter.
Concurrent operations of the same kind share their channel's bandwidth,
which is what couples the producer/consumer pairs in the single-node
experiments (Fig. 5).

Capacity is tracked so tests can assert the 3.5 TB Corona budget is
respected; exceeding it raises :class:`repro.errors.StorageError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigError, StorageError
from repro.sim.core import Environment
from repro.sim.fluid import FluidNetwork
from repro.sim.resources import SharedBandwidth
from repro.sim.rng import RngStreams
from repro.units import TiB, gb_per_s, usec

__all__ = ["SSDConfig", "SSDModel"]


@dataclass(frozen=True)
class SSDConfig:
    """Performance envelope of a node-local NVMe SSD.

    Defaults approximate the 3.5 TB NVMe devices in Corona compute nodes.

    Attributes
    ----------
    read_bandwidth / write_bandwidth:
        Effective stream bandwidth of the local I/O path in bytes/second,
        shared among concurrent operations of that kind. These model the
        *application-visible* path including the page cache (writes return
        after the cache copy; dirty writeback is asynchronous), which is
        why they exceed raw device speeds.
    read_latency / write_latency:
        Fixed per-operation setup cost in seconds (submission, doorbell,
        FTL lookup). Writes are costlier than reads on NVMe.
    capacity:
        Usable bytes.
    jitter_cv:
        Coefficient of variation of the lognormal latency jitter; 0
        disables jitter (deterministic mode, used by unit tests).
    """

    read_bandwidth: float = gb_per_s(6.0)
    write_bandwidth: float = gb_per_s(5.0)
    read_latency: float = usec(10.0)
    write_latency: float = usec(20.0)
    capacity: int = int(3.5 * TiB)
    jitter_cv: float = 0.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on non-physical values."""
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ConfigError("SSD bandwidth must be positive")
        if self.read_latency < 0 or self.write_latency < 0:
            raise ConfigError("SSD latency must be non-negative")
        if self.capacity <= 0:
            raise ConfigError("SSD capacity must be positive")
        if self.jitter_cv < 0:
            raise ConfigError("jitter_cv must be non-negative")


@dataclass
class SSDStats:
    """Lifetime operation counters for one device."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0


class SSDModel:
    """One NVMe SSD attached to a node.

    All data operations are generator methods intended to be driven from a
    simulation process (``yield from ssd.write(n)``); each returns the
    elapsed device time for the operation.
    """

    def __init__(
        self,
        env: Environment,
        config: SSDConfig,
        rng: RngStreams,
        name: str = "ssd",
        fluid: Optional[FluidNetwork] = None,
        fold_latency: bool = False,
    ) -> None:
        config.validate()
        self.env = env
        self.config = config
        self.name = name
        self._rng = rng
        if fluid is not None:
            self._read_chan = fluid.link(config.read_bandwidth,
                                         label=f"{name}.read")
            self._write_chan = fluid.link(config.write_bandwidth,
                                          label=f"{name}.write")
        else:
            self._read_chan = SharedBandwidth(env, config.read_bandwidth)
            self._write_chan = SharedBandwidth(env, config.write_bandwidth)
        # `fluid` tier only: access latency rides as the flow's tail, so
        # an operation costs one event instead of a Timeout plus a flow.
        self._fold = fold_latency and fluid is not None
        self._used = 0
        self._degraded = 1.0
        self.stats = SSDStats()
        self._m_used = None  # used-bytes gauge when metered

    def channels(self):
        """Both device channels, for kernel-health aggregation."""
        yield self._read_chan
        yield self._write_chan

    # -- telemetry -----------------------------------------------------------
    def attach_metrics(self, timeline, label: str) -> None:
        """Meter the device as ``{label}.read`` / ``{label}.write`` channel
        gauge families plus a ``{label}.used_bytes`` occupancy gauge.

        On a DYAD staging node the occupancy gauge doubles as the staging
        area's fill level over time.
        """
        self._read_chan.attach_metrics(timeline, f"{label}.read")
        self._write_chan.attach_metrics(timeline, f"{label}.write")
        self._m_used = timeline.gauge(f"{label}.used_bytes")
        self._m_used.set(float(self._used))

    # -- fault injection -----------------------------------------------------
    @property
    def degraded(self) -> float:
        """Current slowdown factor (1.0 = healthy)."""
        return self._degraded

    def degrade(self, factor: float) -> None:
        """Throttle both channels to ``1/factor`` of configured bandwidth.

        Models device-level degradation (thermal throttling, worn flash,
        background garbage collection). In-flight transfers slow down
        mid-stream; ``restore`` reverses the effect.
        """
        if factor < 1.0:
            raise ValueError(f"degrade factor must be >= 1, got {factor}")
        self._degraded = float(factor)
        self._read_chan.set_bandwidth(self.config.read_bandwidth / factor)
        self._write_chan.set_bandwidth(self.config.write_bandwidth / factor)

    def restore(self) -> None:
        """Return both channels to their configured bandwidth."""
        self._degraded = 1.0
        self._read_chan.set_bandwidth(self.config.read_bandwidth)
        self._write_chan.set_bandwidth(self.config.write_bandwidth)

    # -- capacity ------------------------------------------------------------
    @property
    def used(self) -> int:
        """Bytes currently allocated on the device."""
        return self._used

    @property
    def free(self) -> int:
        """Bytes still available."""
        return self.config.capacity - self._used

    def allocate(self, nbytes: int) -> None:
        """Reserve space for a file; raises when the device would overflow."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if self._used + nbytes > self.config.capacity:
            raise StorageError(
                f"{self.name}: allocation of {nbytes} B exceeds capacity "
                f"({self.free} B free)"
            )
        self._used += nbytes
        if self._m_used is not None:
            self._m_used.set(float(self._used))

    def release(self, nbytes: int) -> None:
        """Return space freed by an unlink/truncate."""
        if nbytes < 0:
            raise ValueError(f"negative release: {nbytes}")
        if nbytes > self._used:
            raise StorageError(f"{self.name}: releasing more than allocated")
        self._used -= nbytes
        if self._m_used is not None:
            self._m_used.set(float(self._used))

    # -- data path -----------------------------------------------------------
    def _latency(self, stream: str, base: float) -> float:
        if self.config.jitter_cv == 0.0:
            return base
        return self._rng.jitter(f"{self.name}.{stream}", base, self.config.jitter_cv)

    def write(self, nbytes: int):
        """Generator: write ``nbytes``; returns elapsed seconds."""
        if nbytes < 0:
            raise ValueError(f"negative write size: {nbytes}")
        start = self.env.now
        if self._fold:
            yield self._write_chan.transfer(
                nbytes, tail=self._latency("wlat", self.config.write_latency))
        else:
            yield self.env.timeout(
                self._latency("wlat", self.config.write_latency))
            if nbytes:
                yield self._write_chan.transfer(nbytes)
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        return self.env.now - start

    def read(self, nbytes: int):
        """Generator: read ``nbytes``; returns elapsed seconds."""
        if nbytes < 0:
            raise ValueError(f"negative read size: {nbytes}")
        start = self.env.now
        if self._fold:
            yield self._read_chan.transfer(
                nbytes, tail=self._latency("rlat", self.config.read_latency))
        else:
            yield self.env.timeout(
                self._latency("rlat", self.config.read_latency))
            if nbytes:
                yield self._read_chan.transfer(nbytes)
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        return self.env.now - start
