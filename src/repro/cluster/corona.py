"""Machine preset for LLNL's Corona cluster (the paper's testbed).

Corona (as described in the paper and the LLNL systems page): 121 compute
nodes, each with one 48-core AMD EPYC 7401, 8 AMD MI50 GPUs, and a 3.5 TB
NVMe SSD, connected by InfiniBand QDR.

The numeric values here are *calibration constants* for the device models,
chosen to be physically plausible for that hardware generation. They are
deliberately centralized in this module so that EXPERIMENTS.md can point at
a single source of truth for the timing model.
"""

from __future__ import annotations

from repro.cluster.network import FabricConfig
from repro.cluster.node import NodeConfig
from repro.cluster.ssd import SSDConfig
from repro.cluster.topology import Cluster, ClusterConfig
from repro.units import TiB, gb_per_s, usec

__all__ = ["CORONA_NODE", "CORONA_FABRIC", "corona"]

#: Per-node hardware of Corona: 48 cores, 8 GPUs, 3.5 TB NVMe.
CORONA_NODE = NodeConfig(
    cores=48,
    gpus=8,
    ssd=SSDConfig(
        read_bandwidth=gb_per_s(6.0),
        write_bandwidth=gb_per_s(5.0),
        read_latency=usec(10.0),
        write_latency=usec(20.0),
        capacity=int(3.5 * TiB),
        jitter_cv=0.0,  # experiments override per-run
    ),
)

#: InfiniBand QDR: 4 GB/s per port, ~2 us/hop, 2 hops through the switch.
CORONA_FABRIC = FabricConfig(
    link_bandwidth=gb_per_s(4.0),
    hop_latency=usec(2.0),
    hops=2,
    rdma_setup=usec(5.0),
    message_setup=usec(15.0),
    bisection_bandwidth=None,
    jitter_cv=0.0,
)

#: Corona has 121 compute nodes; experiments use at most 64.
CORONA_MAX_NODES = 121


def corona(nodes: int = 2, seed: int = 0, jitter_cv: float = 0.0,
           fidelity: str = "exact") -> Cluster:
    """Build a Corona-like cluster of ``nodes`` compute nodes.

    ``jitter_cv`` turns on lognormal service-time jitter across all devices
    (the experiments use a small value, ~0.05, to produce the run-to-run
    variance the paper reports; unit tests use 0 for exact determinism).
    ``fidelity`` selects the simulation tier (``exact`` / ``hybrid`` /
    ``fluid``, see :class:`repro.sim.fluid.Fidelity`).
    """
    if not 1 <= nodes <= CORONA_MAX_NODES:
        raise ValueError(
            f"Corona has {CORONA_MAX_NODES} nodes; requested {nodes}"
        )
    node = NodeConfig(
        cores=CORONA_NODE.cores,
        gpus=CORONA_NODE.gpus,
        ssd=SSDConfig(
            read_bandwidth=CORONA_NODE.ssd.read_bandwidth,
            write_bandwidth=CORONA_NODE.ssd.write_bandwidth,
            read_latency=CORONA_NODE.ssd.read_latency,
            write_latency=CORONA_NODE.ssd.write_latency,
            capacity=CORONA_NODE.ssd.capacity,
            jitter_cv=jitter_cv,
        ),
    )
    fabric = FabricConfig(
        link_bandwidth=CORONA_FABRIC.link_bandwidth,
        hop_latency=CORONA_FABRIC.hop_latency,
        hops=CORONA_FABRIC.hops,
        rdma_setup=CORONA_FABRIC.rdma_setup,
        message_setup=CORONA_FABRIC.message_setup,
        bisection_bandwidth=CORONA_FABRIC.bisection_bandwidth,
        jitter_cv=jitter_cv,
    )
    return Cluster(ClusterConfig(nodes=nodes, node=node, fabric=fabric,
                                 seed=seed, fidelity=fidelity))
